//! `scale-sim` — the command-line front end, mirroring the original tool's
//! interface (Fig. 2 of the paper): a hardware config file plus a topology
//! CSV in, reports and optional cycle-accurate traces out.

use std::env;
use std::fs;
use std::io;
use std::path::PathBuf;
use std::process::ExitCode;

use scalesim::sweep::{CsvSink, JsonLinesSink, SweepEngine, SweepOutcome, SweepPlan};
use scalesim::{
    parse_config, Dataflow, ExploreBudget, ExploreEngine, ExploreOptions, PartitionGrid, SimConfig,
    Simulator,
};
use scalesim_topology::{networks, parse_topology_csv, Topology};

const USAGE: &str = "\
scale-sim — systolic-array DNN accelerator simulator (SCALE-Sim in Rust)

USAGE:
    scale-sim [run] [OPTIONS]
    scale-sim serve [--port <P>] [--host <ADDR>] [--workers <N>] [--cache <N>]
                    [--queue-depth <N>] [--max-connections <N>]
                    [--deadline-ms <MS>] [--grace-ms <MS>]
    scale-sim batch --manifest <FILE> [--jobs <N>] [--output <FILE>] [--cache <N>]
                    [--retries <N>]
    scale-sim sweep --plan <FILE> [--jobs <N>] [--output <FILE>]
                    [--format csv|jsonl] [--cache <N>] [--dry-run]
                    [--trace-out <FILE>] [--progress]
    scale-sim explore --plan <FILE> [--budget <N|30s|5m>] [--keep-within <PCT>]
                      [--jobs <N>] [--output <FILE>] [--format csv|jsonl]
                      [--cache <N>] [--trace-out <FILE>] [--progress]

SUBCOMMANDS:
    run      simulate one workload (the default when no subcommand is given)
    serve    run the HTTP simulation service (POST /simulate, POST /sweep,
             POST /explore, GET /stats, GET /metrics, GET /healthz,
             GET /debug/jobs, GET /debug/trace) with a shared
             content-addressed result cache; jobs past --queue-depth shed
             with 503 + Retry-After, requests honor X-Scalesim-Deadline-Ms
             (--deadline-ms default, 504 on expiry), and SIGINT/SIGTERM
             drain in-flight work for up to --grace-ms before exiting
    batch    run a manifest of jobs concurrently through the same engine
             and write one combined REPORT CSV; jobs shed by an overloaded
             engine retry up to --retries times with backoff + jitter
    sweep    expand a design-space plan file (workloads x MAC budgets x
             partition grids x aspect ratios x dataflows) and evaluate
             every point in parallel through a content-addressed result
             cache; rows stream out in plan order and a best/sweet-spot
             summary per (workload, budget, dataflow) group goes to stderr;
             --dry-run prints the point count, exact dedup and per-axis
             breakdown without simulating anything
    explore  successive refinement over the same plan format: stage 0
             scores every candidate with the analytical model (generated
             lazily — million-point spaces are fine), stage 1 keeps only
             points within --keep-within percent of the per-workload
             cost/runtime frontier, stage 2 simulates survivors through
             the sweep engine under --budget (a point count, or a
             wall-clock limit like 30s/5m), refining toward the largest
             analytical-vs-measured gaps; rows carry predicted + measured
             cycles and a frontier flag, and the final report (frontier
             table, pruning counts, error stats) goes to stderr. With a
             point-count budget the output is byte-identical at any --jobs

OPTIONS:
    -c, --config <FILE>     hardware config file (Table I format); defaults
                            to the paper's 32x32 OS / 512+512+256 KB setup
    -t, --topology <FILE>   topology CSV (Table II format)
    -n, --network <NAME>    built-in workload instead of --topology:
                            resnet50 | alexnet | yolo_tiny | language_models
                            | a Table IV layer tag (TF0, GNMT2, NCF1, ...)
    -g, --grid <PRxPC>      scale-out partition grid (e.g. 4x2); default 1x1
    -d, --dataflow <DF>     override the dataflow: os | ws | is
    -b, --bandwidth <B>     DRAM bandwidth in bytes/cycle; enables the
                            finite-bandwidth stall model
        --batch <N>         batch the workload N times (lowers convs to GEMM)
    -o, --output <DIR>      write REPORT.csv (and traces) into DIR
        --traces            also write per-layer SRAM and DRAM traces
        --profile           print a per-layer wall-time/cycles table after
                            the report (from the telemetry registry)
        --dump-config       print the effective config and exit
        --trace-out <FILE>  record a hierarchical execution trace and write
                            it as Chrome trace-event JSON (open in Perfetto
                            or chrome://tracing); also accepted by sweep
                            and explore
        --progress          (sweep/explore) live progress on stderr:
                            points done/total, rows/s, cache hits, ETA
    -h, --help              show this help
";

struct Args {
    config: Option<PathBuf>,
    topology: Option<PathBuf>,
    network: Option<String>,
    grid: PartitionGrid,
    dataflow: Option<Dataflow>,
    bandwidth: Option<f64>,
    batch: Option<u64>,
    output: Option<PathBuf>,
    traces: bool,
    profile: bool,
    dump_config: bool,
    trace_out: Option<PathBuf>,
}

/// Turns trace recording on when `--trace-out` was given. Call before the
/// simulated work starts; pair with [`write_trace`] afterwards.
fn enable_tracing(trace_out: &Option<PathBuf>) {
    if trace_out.is_some() {
        scalesim_telemetry::trace::install(scalesim_telemetry::trace::DEFAULT_CAPACITY);
    }
}

/// Exports the recorded trace ring as Chrome trace-event JSON.
fn write_trace(trace_out: &Option<PathBuf>) -> Result<(), String> {
    let Some(path) = trace_out else {
        return Ok(());
    };
    let file =
        fs::File::create(path).map_err(|e| format!("cannot create {}: {e}", path.display()))?;
    let mut writer = io::BufWriter::new(file);
    scalesim_telemetry::trace::export_chrome_json(&mut writer)
        .and_then(|()| io::Write::flush(&mut writer))
        .map_err(|e| format!("cannot write trace {}: {e}", path.display()))?;
    eprintln!("wrote trace {}", path.display());
    Ok(())
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        config: None,
        topology: None,
        network: None,
        grid: PartitionGrid::monolithic(),
        dataflow: None,
        bandwidth: None,
        batch: None,
        output: None,
        traces: false,
        profile: false,
        dump_config: false,
        trace_out: None,
    };
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "-c" | "--config" => args.config = Some(PathBuf::from(value("--config")?)),
            "-t" | "--topology" => args.topology = Some(PathBuf::from(value("--topology")?)),
            "-n" | "--network" => args.network = Some(value("--network")?),
            "-g" | "--grid" => {
                let text = value("--grid")?;
                let (pr, pc) = text
                    .split_once('x')
                    .ok_or_else(|| format!("--grid expects PRxPC, got `{text}`"))?;
                let pr: u64 = pr.parse().map_err(|_| format!("bad grid rows `{pr}`"))?;
                let pc: u64 = pc.parse().map_err(|_| format!("bad grid cols `{pc}`"))?;
                if pr == 0 || pc == 0 {
                    return Err("grid dimensions must be nonzero".into());
                }
                args.grid = PartitionGrid::new(pr, pc);
            }
            "-d" | "--dataflow" => {
                let text = value("--dataflow")?;
                args.dataflow = Some(
                    text.parse()
                        .map_err(|_| format!("dataflow must be os/ws/is, got `{text}`"))?,
                );
            }
            "-b" | "--bandwidth" => {
                let text = value("--bandwidth")?;
                let bw: f64 = text
                    .parse()
                    .map_err(|_| format!("bad bandwidth `{text}`"))?;
                if !(bw.is_finite() && bw > 0.0) {
                    return Err("bandwidth must be positive".into());
                }
                args.bandwidth = Some(bw);
            }
            "--batch" => {
                let text = value("--batch")?;
                let n: u64 = text.parse().map_err(|_| format!("bad batch `{text}`"))?;
                if n == 0 {
                    return Err("batch must be nonzero".into());
                }
                args.batch = Some(n);
            }
            "-o" | "--output" => args.output = Some(PathBuf::from(value("--output")?)),
            "--traces" => args.traces = true,
            "--profile" => args.profile = true,
            "--dump-config" => args.dump_config = true,
            "--trace-out" => args.trace_out = Some(PathBuf::from(value("--trace-out")?)),
            "-h" | "--help" => return Err(String::new()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

fn load_topology(args: &Args) -> Result<Topology, String> {
    if let Some(path) = &args.topology {
        let text = fs::read_to_string(path)
            .map_err(|e| format!("cannot read topology {}: {e}", path.display()))?;
        let name = path
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("topology")
            .to_owned();
        return parse_topology_csv(&name, &text).map_err(|e| format!("topology parse error: {e}"));
    }
    match args.network.as_deref() {
        Some(name) => networks::by_name(name).ok_or_else(|| {
            format!(
                "unknown built-in workload `{name}` (try resnet50, resnet18, alexnet, \
                 googlenet, mobilenet_v1, vgg16, yolo_tiny, language_models, or a \
                 Table IV layer tag like TF0)"
            )
        }),
        None => Err("no workload: pass --topology <file> or --network <name>".into()),
    }
}

/// Output encoding for `scale-sim sweep`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SweepFormat {
    Csv,
    JsonLines,
}

#[derive(Debug)]
struct SweepArgs {
    plan: PathBuf,
    jobs: Option<usize>,
    output: Option<PathBuf>,
    format: SweepFormat,
    cache: usize,
    dry_run: bool,
    trace_out: Option<PathBuf>,
    progress: bool,
}

fn parse_sweep_args(argv: &[String]) -> Result<SweepArgs, String> {
    let mut plan = None;
    let mut jobs = None;
    let mut output = None;
    let mut format = SweepFormat::Csv;
    let mut cache = 1024usize;
    let mut dry_run = false;
    let mut trace_out = None;
    let mut progress = false;
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "-p" | "--plan" => plan = Some(PathBuf::from(value("--plan")?)),
            "-j" | "--jobs" => {
                let text = value("--jobs")?;
                let n: usize = text.parse().map_err(|_| format!("bad jobs `{text}`"))?;
                if n == 0 {
                    return Err("jobs must be nonzero".into());
                }
                jobs = Some(n);
            }
            "-o" | "--output" => output = Some(PathBuf::from(value("--output")?)),
            "--format" => {
                let text = value("--format")?;
                format = match text.as_str() {
                    "csv" => SweepFormat::Csv,
                    "jsonl" => SweepFormat::JsonLines,
                    other => return Err(format!("format must be csv or jsonl, got `{other}`")),
                };
            }
            "--cache" => {
                let text = value("--cache")?;
                let n: usize = text.parse().map_err(|_| format!("bad cache `{text}`"))?;
                if n == 0 {
                    return Err("cache must be nonzero".into());
                }
                cache = n;
            }
            "--dry-run" => dry_run = true,
            "--trace-out" => trace_out = Some(PathBuf::from(value("--trace-out")?)),
            "--progress" => progress = true,
            other => return Err(format!("unknown sweep argument `{other}`")),
        }
    }
    let plan = plan.ok_or("sweep requires --plan <FILE>")?;
    Ok(SweepArgs {
        plan,
        jobs,
        output,
        format,
        cache,
        dry_run,
        trace_out,
        progress,
    })
}

fn run_sweep_points<W: io::Write>(
    engine: &SweepEngine,
    plan: &SweepPlan,
    jobs: usize,
    format: SweepFormat,
    writer: W,
) -> Result<SweepOutcome, String> {
    match format {
        SweepFormat::Csv => engine.run_streaming(plan, jobs, &mut CsvSink::new(writer)),
        SweepFormat::JsonLines => engine.run_streaming(plan, jobs, &mut JsonLinesSink::new(writer)),
    }
    .map_err(|e| format!("sweep failed: {e}"))
}

/// Reads and parses a plan file; diagnostics carry the file name.
fn load_plan(path: &std::path::Path) -> Result<SweepPlan, String> {
    let text = fs::read_to_string(path)
        .map_err(|e| format!("cannot read plan {}: {e}", path.display()))?;
    SweepPlan::parse_named(&text, &path.display().to_string())
        .map_err(|e| format!("plan parse error: {e}"))
}

fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// `sweep --dry-run`: the candidate space, sized but not simulated.
fn print_dry_run(plan: &SweepPlan) -> Result<(), String> {
    let space = plan
        .space_summary()
        .map_err(|e| format!("plan invalid: {e}"))?;
    println!(
        "plan `{}`: {} points = {} workloads x {} budgets x (grids x aspects) x {} dataflows",
        plan.name, space.points, space.workloads, space.budgets, space.dataflows,
    );
    println!(
        "distinct simulations after dedup: {} ({} duplicate points)",
        space.distinct_jobs,
        space.points - space.distinct_jobs,
    );
    for b in &space.per_budget {
        println!(
            "  budget {:>12}: {:>3} grids, {:>4} (grid, array) combos, {:>6} points",
            b.budget,
            b.grids,
            b.combos,
            b.combos * space.workloads * space.dataflows,
        );
    }
    Ok(())
}

fn run_sweep_cli(argv: &[String]) -> Result<(), String> {
    let args = parse_sweep_args(argv)?;
    let plan = load_plan(&args.plan)?;
    if args.dry_run {
        return print_dry_run(&plan);
    }
    let jobs = args.jobs.unwrap_or_else(default_jobs);
    enable_tracing(&args.trace_out);
    let engine = SweepEngine::new(args.cache).with_progress(args.progress);

    let start = std::time::Instant::now();
    let outcome = match &args.output {
        Some(path) => {
            let file = fs::File::create(path)
                .map_err(|e| format!("cannot create {}: {e}", path.display()))?;
            run_sweep_points(&engine, &plan, jobs, args.format, io::BufWriter::new(file))?
        }
        None => run_sweep_points(&engine, &plan, jobs, args.format, io::stdout().lock())?,
    };
    let wall = start.elapsed();

    eprintln!(
        "sweep `{}`: {} points ({} simulations, {} cache hits) on {} jobs in {:.2}s",
        outcome.plan_name,
        outcome.results.len(),
        outcome.simulations,
        outcome.cache_hits,
        jobs,
        wall.as_secs_f64(),
    );
    for group in outcome.summarize() {
        let best = group.best;
        let sweet = match group.sweet_spot {
            Some(s) => format!(
                ", sweet spot {} partitions ({} grid, {:.3} B/cycle)",
                s.spec.partitions(),
                s.spec.grid,
                s.report.peak_required_bandwidth(),
            ),
            None => String::new(),
        };
        eprintln!(
            "  {} @ {} MACs [{}]: best {} grid of {} arrays, {} effective cycles{}",
            group.workload,
            group.budget,
            group.dataflow,
            best.spec.grid,
            best.spec.array,
            best.report.total_effective_cycles(),
            sweet,
        );
    }
    if let Some(path) = &args.output {
        eprintln!("wrote {}", path.display());
    }
    write_trace(&args.trace_out)?;
    Ok(())
}

#[derive(Debug)]
struct ExploreArgs {
    plan: PathBuf,
    budget: ExploreBudget,
    keep_within: f64,
    jobs: Option<usize>,
    output: Option<PathBuf>,
    format: SweepFormat,
    cache: usize,
    trace_out: Option<PathBuf>,
    progress: bool,
}

/// `--budget` grammar: a bare integer is a simulation count; an `s`/`m`
/// suffix is a wall-clock limit.
fn parse_explore_budget(text: &str) -> Result<ExploreBudget, String> {
    let bad = || format!("bad budget `{text}` (want a point count, or 30s / 5m wall-clock)");
    if let Some(secs) = text.strip_suffix('s') {
        let n: u64 = secs.parse().map_err(|_| bad())?;
        Ok(ExploreBudget::WallClock(std::time::Duration::from_secs(n)))
    } else if let Some(mins) = text.strip_suffix('m') {
        let n: u64 = mins.parse().map_err(|_| bad())?;
        Ok(ExploreBudget::WallClock(std::time::Duration::from_secs(
            n * 60,
        )))
    } else {
        let n: usize = text.parse().map_err(|_| bad())?;
        Ok(ExploreBudget::Sims(n))
    }
}

fn parse_explore_args(argv: &[String]) -> Result<ExploreArgs, String> {
    let mut plan = None;
    let mut budget = ExploreBudget::Unlimited;
    let mut keep_within = 10.0f64;
    let mut jobs = None;
    let mut output = None;
    let mut format = SweepFormat::Csv;
    let mut cache = 1024usize;
    let mut trace_out = None;
    let mut progress = false;
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "-p" | "--plan" => plan = Some(PathBuf::from(value("--plan")?)),
            "--budget" => budget = parse_explore_budget(&value("--budget")?)?,
            "--keep-within" => {
                let text = value("--keep-within")?;
                let pct: f64 = text
                    .parse()
                    .map_err(|_| format!("bad keep-within `{text}`"))?;
                if !(pct.is_finite() && pct >= 0.0) {
                    return Err("keep-within must be a nonnegative percentage".into());
                }
                keep_within = pct;
            }
            "-j" | "--jobs" => {
                let text = value("--jobs")?;
                let n: usize = text.parse().map_err(|_| format!("bad jobs `{text}`"))?;
                if n == 0 {
                    return Err("jobs must be nonzero".into());
                }
                jobs = Some(n);
            }
            "-o" | "--output" => output = Some(PathBuf::from(value("--output")?)),
            "--format" => {
                let text = value("--format")?;
                format = match text.as_str() {
                    "csv" => SweepFormat::Csv,
                    "jsonl" => SweepFormat::JsonLines,
                    other => return Err(format!("format must be csv or jsonl, got `{other}`")),
                };
            }
            "--cache" => {
                let text = value("--cache")?;
                let n: usize = text.parse().map_err(|_| format!("bad cache `{text}`"))?;
                if n == 0 {
                    return Err("cache must be nonzero".into());
                }
                cache = n;
            }
            "--trace-out" => trace_out = Some(PathBuf::from(value("--trace-out")?)),
            "--progress" => progress = true,
            other => return Err(format!("unknown explore argument `{other}`")),
        }
    }
    let plan = plan.ok_or("explore requires --plan <FILE>")?;
    Ok(ExploreArgs {
        plan,
        budget,
        keep_within,
        jobs,
        output,
        format,
        cache,
        trace_out,
        progress,
    })
}

fn run_explore_cli(argv: &[String]) -> Result<(), String> {
    let args = parse_explore_args(argv)?;
    let plan = load_plan(&args.plan)?;
    let jobs = args.jobs.unwrap_or_else(default_jobs);
    enable_tracing(&args.trace_out);
    let options = ExploreOptions {
        keep_within_pct: args.keep_within,
        budget: args.budget,
        jobs,
        progress: args.progress,
    };
    let engine = ExploreEngine::new(args.cache);
    let outcome = engine
        .run(&plan, &options)
        .map_err(|e| format!("explore failed: {e}"))?;

    let write = |writer: &mut dyn io::Write| match args.format {
        SweepFormat::Csv => outcome.write_csv(writer),
        SweepFormat::JsonLines => outcome.write_jsonl(writer),
    };
    match &args.output {
        Some(path) => {
            let file = fs::File::create(path)
                .map_err(|e| format!("cannot create {}: {e}", path.display()))?;
            write(&mut io::BufWriter::new(file))
                .map_err(|e| format!("explore output failed: {e}"))?;
        }
        None => {
            write(&mut io::stdout().lock()).map_err(|e| format!("explore output failed: {e}"))?;
        }
    }

    let pruned_pct = if outcome.candidates > 0 {
        100.0 * outcome.pruned as f64 / outcome.candidates as f64
    } else {
        0.0
    };
    eprintln!(
        "explore `{}`: {} candidates -> {} survivors ({} pruned, {:.1}%), \
         {} simulated ({} cache hits) on {} jobs",
        outcome.plan_name,
        outcome.candidates,
        outcome.survivors,
        outcome.pruned,
        pruned_pct,
        outcome.simulated,
        outcome.cache_hits,
        jobs,
    );
    let stage0_rate = if outcome.stage_seconds.analytical > 0.0 {
        outcome.candidates as f64 / outcome.stage_seconds.analytical
    } else {
        f64::INFINITY
    };
    eprintln!(
        "  stages: analytical {:.3}s ({:.0} candidates/s), prune {:.3}s, simulate {:.2}s",
        outcome.stage_seconds.analytical,
        stage0_rate,
        outcome.stage_seconds.prune,
        outcome.stage_seconds.simulate,
    );
    eprintln!(
        "  analytical error (measured/predicted): p50 {:.3}x, p95 {:.3}x, max {:.3}x \
         over {} simulated points",
        outcome.error_stats.p50,
        outcome.error_stats.p95,
        outcome.error_stats.max,
        outcome.error_stats.count,
    );
    for (workload, points) in outcome.frontiers() {
        eprintln!("  frontier {workload}: {} points", points.len());
        for p in points {
            eprintln!(
                "    {:>12} MACs: {} grid of {} arrays [{}], predicted {} cycles, \
                 measured {} effective cycles",
                p.spec.budget,
                p.spec.grid,
                p.spec.array,
                p.spec.dataflow,
                p.predicted,
                p.measured(),
            );
        }
    }
    if let Some(path) = &args.output {
        eprintln!("wrote {}", path.display());
    }
    write_trace(&args.trace_out)?;
    Ok(())
}

/// How a failed invocation should be reported.
enum CliError {
    /// `--help`: print usage, exit 0.
    Help,
    /// The command line itself is wrong: one-line error plus usage.
    Usage(String),
    /// The command line was fine but execution failed (unreadable or
    /// malformed config/topology/manifest, bind failure, ...): one-line
    /// error only — no usage dump, no panic, nonzero exit.
    Runtime(String),
}

fn run(argv: &[String]) -> Result<(), CliError> {
    let args = parse_args(argv).map_err(|msg| {
        if msg.is_empty() {
            CliError::Help
        } else {
            CliError::Usage(msg)
        }
    })?;
    run_simulation(&args).map_err(CliError::Runtime)
}

fn run_simulation(args: &Args) -> Result<(), String> {
    let mut config: SimConfig = match &args.config {
        Some(path) => {
            let text = fs::read_to_string(path)
                .map_err(|e| format!("cannot read config {}: {e}", path.display()))?;
            parse_config(&text).map_err(|e| format!("config parse error: {e}"))?
        }
        None => SimConfig::default(),
    };
    if let Some(df) = args.dataflow {
        config.dataflow = df;
    }
    if let Some(bw) = args.bandwidth {
        config.dram_bandwidth = Some(bw);
    }

    if args.dump_config {
        print!("{}", config.to_config_string());
        return Ok(());
    }

    let mut topology = load_topology(args)?;
    if let Some(batch) = args.batch {
        topology = networks::batched(&topology, batch);
    }
    let sim = Simulator::new(config).with_grid(args.grid);

    eprintln!(
        "running {} ({} layers) on {} grid of {} arrays, dataflow {}",
        topology.name(),
        topology.len(),
        args.grid,
        config.array,
        config.dataflow,
    );

    if let Some(dir) = &args.output {
        fs::create_dir_all(dir).map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
        if args.traces {
            for layer in &topology {
                let create = |suffix: &str| {
                    fs::File::create(dir.join(format!("{}_{suffix}.csv", layer.name())))
                        .map_err(|e| format!("cannot create trace file: {e}"))
                };
                sim.write_traces(layer, create("sram_read")?, create("sram_write")?)
                    .map_err(|e| format!("trace write failed for {}: {e}", layer.name()))?;
                sim.write_dram_traces(layer, create("dram_read")?, create("dram_write")?)
                    .map_err(|e| format!("dram trace failed for {}: {e}", layer.name()))?;
            }
        }
    }

    enable_tracing(&args.trace_out);
    let report = sim.run_topology(&topology);
    println!("{report}");
    if args.profile {
        print!("{}", profile_table(&report));
    }

    if let Some(dir) = &args.output {
        let path = dir.join("REPORT.csv");
        fs::write(&path, report.to_csv())
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        eprintln!("wrote {}", path.display());
    }
    write_trace(&args.trace_out)?;
    Ok(())
}

/// Renders the `--profile` table: one row per layer with simulated cycles
/// and the wall-clock time `run_layer` spent on it, read back from the
/// process-global telemetry registry.
fn profile_table(report: &scalesim::NetworkReport) -> String {
    use scalesim::telemetry_names;
    let registry = scalesim_telemetry::global();
    let wall_of = |layer: &str| {
        registry
            .counter_value(telemetry_names::LAYER_WALL_MICROS, &[("layer", layer)])
            .unwrap_or(0)
    };
    let total_wall: u64 = report.layers().iter().map(|l| wall_of(&l.name)).sum();
    let name_width = report
        .layers()
        .iter()
        .map(|l| l.name.len())
        .max()
        .unwrap_or(5)
        .max("layer".len());

    let mut out = String::new();
    out.push_str("\nprofile (wall time per layer):\n");
    out.push_str(&format!(
        "{:<name_width$}  {:>14}  {:>12}  {:>6}\n",
        "layer", "cycles", "wall_micros", "wall%"
    ));
    for layer in report.layers() {
        let wall = wall_of(&layer.name);
        let pct = if total_wall > 0 {
            100.0 * wall as f64 / total_wall as f64
        } else {
            0.0
        };
        out.push_str(&format!(
            "{:<name_width$}  {:>14}  {:>12}  {:>5.1}%\n",
            layer.name, layer.total_cycles, wall, pct
        ));
    }
    out.push_str(&format!(
        "{:<name_width$}  {:>14}  {:>12}  {:>6}\n",
        "total",
        report.total_cycles(),
        total_wall,
        "100.0%"
    ));
    out
}

fn main() -> ExitCode {
    let argv: Vec<String> = env::args().skip(1).collect();
    // Subcommands dispatch to the server crate; their errors are always
    // runtime-style (one line, no usage dump). `run` is the explicit
    // spelling of the default simulate path.
    let outcome = match argv.first().map(String::as_str) {
        Some("serve") => scalesim_server::cli::run_serve(&argv[1..]).map_err(CliError::Runtime),
        Some("batch") => scalesim_server::cli::run_batch_cli(&argv[1..]).map_err(CliError::Runtime),
        Some("sweep") => run_sweep_cli(&argv[1..]).map_err(CliError::Runtime),
        Some("explore") => run_explore_cli(&argv[1..]).map_err(CliError::Runtime),
        Some("run") => run(&argv[1..]),
        _ => run(&argv),
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError::Help) => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Err(CliError::Usage(msg)) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprint!("{USAGE}");
            ExitCode::FAILURE
        }
        Err(CliError::Runtime(msg)) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_full_argument_set() {
        let a = parse_args(&argv(&[
            "--config",
            "x.cfg",
            "--topology",
            "t.csv",
            "--grid",
            "4x2",
            "--output",
            "out",
            "--traces",
        ]))
        .unwrap();
        assert_eq!(a.grid, PartitionGrid::new(4, 2));
        assert!(a.traces);
        assert_eq!(a.config.unwrap(), PathBuf::from("x.cfg"));
    }

    #[test]
    fn parses_extended_flags() {
        let a = parse_args(&argv(&[
            "--dataflow",
            "ws",
            "--bandwidth",
            "32.5",
            "--batch",
            "8",
        ]))
        .unwrap();
        assert_eq!(a.dataflow, Some(Dataflow::WeightStationary));
        assert_eq!(a.bandwidth, Some(32.5));
        assert_eq!(a.batch, Some(8));
    }

    #[test]
    fn rejects_bad_extended_flags() {
        assert!(parse_args(&argv(&["--dataflow", "rs"])).is_err());
        assert!(parse_args(&argv(&["--bandwidth", "-3"])).is_err());
        assert!(parse_args(&argv(&["--batch", "0"])).is_err());
    }

    #[test]
    fn rejects_bad_grid() {
        assert!(parse_args(&argv(&["--grid", "4"])).is_err());
        assert!(parse_args(&argv(&["--grid", "0x2"])).is_err());
        assert!(parse_args(&argv(&["--grid", "axb"])).is_err());
    }

    #[test]
    fn rejects_unknown_flag() {
        assert!(parse_args(&argv(&["--frobnicate"])).is_err());
    }

    #[test]
    fn help_is_signalled_with_empty_error() {
        assert_eq!(parse_args(&argv(&["--help"])).err(), Some(String::new()));
    }

    #[test]
    fn builtin_networks_resolve() {
        for name in [
            "resnet50",
            "resnet18",
            "alexnet",
            "googlenet",
            "mobilenet_v1",
            "vgg16",
            "yolo_tiny",
            "language_models",
        ] {
            let mut a = parse_args(&[]).unwrap();
            a.network = Some(name.into());
            assert!(load_topology(&a).is_ok(), "{name} should load");
        }
        let mut a = parse_args(&[]).unwrap();
        a.network = Some("vgg".into());
        assert!(load_topology(&a).is_err());
    }

    #[test]
    fn missing_workload_is_an_error() {
        let a = parse_args(&[]).unwrap();
        assert!(load_topology(&a).is_err());
    }

    #[test]
    fn layer_tag_workloads_resolve() {
        let mut a = parse_args(&[]).unwrap();
        a.network = Some("TF0".into());
        let topo = load_topology(&a).unwrap();
        assert_eq!(topo.len(), 1);
    }

    #[test]
    fn parses_sweep_arguments() {
        let a = parse_sweep_args(&argv(&[
            "--plan",
            "fig9.plan",
            "--jobs",
            "4",
            "--output",
            "out.csv",
            "--format",
            "jsonl",
            "--cache",
            "32",
            "--trace-out",
            "trace.json",
            "--progress",
        ]))
        .unwrap();
        assert_eq!(a.plan, PathBuf::from("fig9.plan"));
        assert_eq!(a.jobs, Some(4));
        assert_eq!(a.output, Some(PathBuf::from("out.csv")));
        assert_eq!(a.format, SweepFormat::JsonLines);
        assert_eq!(a.cache, 32);
        assert_eq!(a.trace_out, Some(PathBuf::from("trace.json")));
        assert!(a.progress);
    }

    #[test]
    fn sweep_defaults_and_errors() {
        let a = parse_sweep_args(&argv(&["--plan", "p"])).unwrap();
        assert_eq!(a.jobs, None);
        assert_eq!(a.format, SweepFormat::Csv);
        assert_eq!(a.cache, 1024);
        assert_eq!(a.trace_out, None);
        assert!(!a.progress);

        assert!(parse_sweep_args(&[]).is_err(), "plan is required");
        assert!(parse_sweep_args(&argv(&["--plan", "p", "--jobs", "0"])).is_err());
        assert!(parse_sweep_args(&argv(&["--plan", "p", "--format", "xml"])).is_err());
        assert!(parse_sweep_args(&argv(&["--plan", "p", "--cache", "0"])).is_err());
        let err = parse_sweep_args(&argv(&["--frobnicate"])).unwrap_err();
        assert!(err.contains("unknown sweep argument"));
    }

    #[test]
    fn sweep_dry_run_flag_parses() {
        let a = parse_sweep_args(&argv(&["--plan", "p", "--dry-run"])).unwrap();
        assert!(a.dry_run);
        let a = parse_sweep_args(&argv(&["--plan", "p"])).unwrap();
        assert!(!a.dry_run);
    }

    #[test]
    fn parses_explore_arguments() {
        let a = parse_explore_args(&argv(&[
            "--plan",
            "fig9.plan",
            "--budget",
            "250",
            "--keep-within",
            "7.5",
            "--jobs",
            "4",
            "--output",
            "out.csv",
            "--format",
            "jsonl",
            "--cache",
            "32",
            "--trace-out",
            "trace.json",
            "--progress",
        ]))
        .unwrap();
        assert_eq!(a.plan, PathBuf::from("fig9.plan"));
        assert_eq!(a.budget, ExploreBudget::Sims(250));
        assert_eq!(a.keep_within, 7.5);
        assert_eq!(a.jobs, Some(4));
        assert_eq!(a.output, Some(PathBuf::from("out.csv")));
        assert_eq!(a.format, SweepFormat::JsonLines);
        assert_eq!(a.cache, 32);
        assert_eq!(a.trace_out, Some(PathBuf::from("trace.json")));
        assert!(a.progress);
    }

    #[test]
    fn explore_budget_tokens() {
        use std::time::Duration;
        assert_eq!(parse_explore_budget("100"), Ok(ExploreBudget::Sims(100)));
        assert_eq!(
            parse_explore_budget("30s"),
            Ok(ExploreBudget::WallClock(Duration::from_secs(30)))
        );
        assert_eq!(
            parse_explore_budget("5m"),
            Ok(ExploreBudget::WallClock(Duration::from_secs(300)))
        );
        assert!(parse_explore_budget("fast").is_err());
        assert!(parse_explore_budget("-3").is_err());
        assert!(parse_explore_budget("2h").is_err());
    }

    #[test]
    fn explore_defaults_and_errors() {
        let a = parse_explore_args(&argv(&["--plan", "p"])).unwrap();
        assert_eq!(a.budget, ExploreBudget::Unlimited);
        assert_eq!(a.keep_within, 10.0);
        assert_eq!(a.jobs, None);
        assert_eq!(a.format, SweepFormat::Csv);
        assert_eq!(a.cache, 1024);
        assert_eq!(a.trace_out, None);
        assert!(!a.progress);

        assert!(parse_explore_args(&[]).is_err(), "plan is required");
        assert!(parse_explore_args(&argv(&["--plan", "p", "--keep-within", "-1"])).is_err());
        assert!(parse_explore_args(&argv(&["--plan", "p", "--keep-within", "NaN"])).is_err());
        assert!(parse_explore_args(&argv(&["--plan", "p", "--jobs", "0"])).is_err());
        assert!(parse_explore_args(&argv(&["--plan", "p", "--budget", "soon"])).is_err());
        let err = parse_explore_args(&argv(&["--frobnicate"])).unwrap_err();
        assert!(err.contains("unknown explore argument"));
    }
}
