//! End-to-end tests of the `scale-sim` binary: real process, real files.

use std::fs;
use std::path::PathBuf;
use std::process::{Command, Output};

fn scale_sim(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_scale-sim"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("scale-sim-e2e-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn help_prints_usage_and_succeeds() {
    let out = scale_sim(&["--help"]);
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("USAGE"));
    assert!(text.contains("--topology"));
}

#[test]
fn unknown_flag_fails_with_usage() {
    let out = scale_sim(&["--bogus"]);
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("unknown argument"));
}

#[test]
fn dump_config_round_trips_through_a_file() {
    let dir = temp_dir("dumpcfg");
    let out = scale_sim(&["--dump-config"]);
    assert!(out.status.success());
    let cfg_path = dir.join("dumped.cfg");
    fs::write(&cfg_path, &out.stdout).unwrap();
    // Feed the dump back in: identical dump out.
    let again = scale_sim(&["--config", cfg_path.to_str().unwrap(), "--dump-config"]);
    assert!(again.status.success());
    assert_eq!(out.stdout, again.stdout);
}

#[test]
fn builtin_network_run_reports_all_layers() {
    let out = scale_sim(&["--network", "alexnet"]);
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    for layer in ["Conv1", "Conv5", "FC8"] {
        assert!(text.contains(layer), "missing {layer} in report");
    }
    assert!(text.contains("total:"));
}

#[test]
fn full_pipeline_writes_report_and_traces() {
    let dir = temp_dir("full");
    // A tiny custom topology keeps the trace files small.
    let topo = dir.join("tiny.csv");
    fs::write(&topo, "TinyConv,8,8,3,3,2,4,1\nTinyGemm,16,8,16\n").unwrap();
    let out = scale_sim(&[
        "--topology",
        topo.to_str().unwrap(),
        "--grid",
        "2x2",
        "--bandwidth",
        "8",
        "--output",
        dir.to_str().unwrap(),
        "--traces",
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let report = fs::read_to_string(dir.join("REPORT.csv")).unwrap();
    assert_eq!(report.lines().count(), 3); // header + 2 layers
    assert!(report.contains("TinyConv"));
    // Stall column is populated because --bandwidth was set.
    let last_col = report
        .lines()
        .nth(1)
        .unwrap()
        .rsplit(',')
        .next()
        .unwrap();
    assert!(last_col.parse::<u64>().is_ok(), "stalled_cycles column");
    for suffix in ["sram_read", "sram_write", "dram_read", "dram_write"] {
        let path = dir.join(format!("TinyConv_{suffix}.csv"));
        assert!(path.exists(), "missing {suffix} trace");
        assert!(fs::metadata(&path).unwrap().len() > 0);
    }
}

#[test]
fn dataflow_override_changes_the_report() {
    let run = |df: &str| {
        let out = scale_sim(&["--network", "yolo_tiny", "--dataflow", df]);
        assert!(out.status.success());
        String::from_utf8(out.stdout).unwrap()
    };
    assert_ne!(run("os"), run("ws"));
}

#[test]
fn batch_flag_multiplies_work() {
    let extract_total = |text: &str| -> u64 {
        // "total: <cycles> cycles, <macs> MACs, ..."
        let line = text.lines().find(|l| l.contains("total:")).unwrap();
        line.split(',')
            .nth(1)
            .unwrap()
            .trim()
            .split(' ')
            .next()
            .unwrap()
            .parse()
            .unwrap()
    };
    let one = scale_sim(&["--network", "alexnet"]);
    let four = scale_sim(&["--network", "alexnet", "--batch", "4"]);
    let macs1 = extract_total(&String::from_utf8(one.stdout).unwrap());
    let macs4 = extract_total(&String::from_utf8(four.stdout).unwrap());
    assert_eq!(macs4, 4 * macs1);
}

#[test]
fn missing_topology_file_is_a_clean_error() {
    let out = scale_sim(&["--topology", "/nonexistent/net.csv"]);
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("cannot read topology"));
}
