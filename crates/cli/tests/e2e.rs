//! End-to-end tests of the `scale-sim` binary: real process, real files.

use std::fs;
use std::path::PathBuf;
use std::process::{Command, Output};

fn scale_sim(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_scale-sim"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("scale-sim-e2e-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn help_prints_usage_and_succeeds() {
    let out = scale_sim(&["--help"]);
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("USAGE"));
    assert!(text.contains("--topology"));
}

#[test]
fn unknown_flag_fails_with_usage() {
    let out = scale_sim(&["--bogus"]);
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("unknown argument"));
}

#[test]
fn dump_config_round_trips_through_a_file() {
    let dir = temp_dir("dumpcfg");
    let out = scale_sim(&["--dump-config"]);
    assert!(out.status.success());
    let cfg_path = dir.join("dumped.cfg");
    fs::write(&cfg_path, &out.stdout).unwrap();
    // Feed the dump back in: identical dump out.
    let again = scale_sim(&["--config", cfg_path.to_str().unwrap(), "--dump-config"]);
    assert!(again.status.success());
    assert_eq!(out.stdout, again.stdout);
}

#[test]
fn builtin_network_run_reports_all_layers() {
    let out = scale_sim(&["--network", "alexnet"]);
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    for layer in ["Conv1", "Conv5", "FC8"] {
        assert!(text.contains(layer), "missing {layer} in report");
    }
    assert!(text.contains("total:"));
}

#[test]
fn full_pipeline_writes_report_and_traces() {
    let dir = temp_dir("full");
    // A tiny custom topology keeps the trace files small.
    let topo = dir.join("tiny.csv");
    fs::write(&topo, "TinyConv,8,8,3,3,2,4,1\nTinyGemm,16,8,16\n").unwrap();
    let out = scale_sim(&[
        "--topology",
        topo.to_str().unwrap(),
        "--grid",
        "2x2",
        "--bandwidth",
        "8",
        "--output",
        dir.to_str().unwrap(),
        "--traces",
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let report = fs::read_to_string(dir.join("REPORT.csv")).unwrap();
    assert_eq!(report.lines().count(), 3); // header + 2 layers
    assert!(report.contains("TinyConv"));
    // Stall column is populated because --bandwidth was set.
    let last_col = report.lines().nth(1).unwrap().rsplit(',').next().unwrap();
    assert!(last_col.parse::<u64>().is_ok(), "stalled_cycles column");
    for suffix in ["sram_read", "sram_write", "dram_read", "dram_write"] {
        let path = dir.join(format!("TinyConv_{suffix}.csv"));
        assert!(path.exists(), "missing {suffix} trace");
        assert!(fs::metadata(&path).unwrap().len() > 0);
    }
}

/// `run --profile` appends a per-layer timing table: every layer of the
/// workload appears exactly once, plus a total row.
#[test]
fn profile_flag_lists_every_layer_exactly_once() {
    let dir = temp_dir("profile");
    let topo = dir.join("tiny.csv");
    fs::write(
        &topo,
        "ProfA,8,8,3,3,2,4,1\nProfB,16,8,16\nProfC,8,8,1,1,4,8,1\n",
    )
    .unwrap();
    let out = scale_sim(&["run", "--topology", topo.to_str().unwrap(), "--profile"]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    let (_, profile) = text
        .split_once("profile (wall time per layer):")
        .expect("profile table present");
    for layer in ["ProfA", "ProfB", "ProfC"] {
        let rows = profile.matches(layer).count();
        assert_eq!(rows, 1, "{layer} must appear exactly once in the profile");
    }
    assert!(profile.contains("wall_micros"));
    assert!(profile.contains("total"));
    assert!(profile.trim_end().ends_with("100.0%"));

    // Without the flag the table is absent, and `run` is optional.
    let plain = scale_sim(&["--topology", topo.to_str().unwrap()]);
    assert!(plain.status.success());
    let plain_text = String::from_utf8(plain.stdout).unwrap();
    assert!(!plain_text.contains("profile (wall time per layer)"));
}

#[test]
fn dataflow_override_changes_the_report() {
    let run = |df: &str| {
        let out = scale_sim(&["--network", "yolo_tiny", "--dataflow", df]);
        assert!(out.status.success());
        String::from_utf8(out.stdout).unwrap()
    };
    assert_ne!(run("os"), run("ws"));
}

#[test]
fn batch_flag_multiplies_work() {
    let extract_total = |text: &str| -> u64 {
        // "total: <cycles> cycles, <macs> MACs, ..."
        let line = text.lines().find(|l| l.contains("total:")).unwrap();
        line.split(',')
            .nth(1)
            .unwrap()
            .trim()
            .split(' ')
            .next()
            .unwrap()
            .parse()
            .unwrap()
    };
    let one = scale_sim(&["--network", "alexnet"]);
    let four = scale_sim(&["--network", "alexnet", "--batch", "4"]);
    let macs1 = extract_total(&String::from_utf8(one.stdout).unwrap());
    let macs4 = extract_total(&String::from_utf8(four.stdout).unwrap());
    assert_eq!(macs4, 4 * macs1);
}

#[test]
fn missing_topology_file_is_a_clean_error() {
    let out = scale_sim(&["--topology", "/nonexistent/net.csv"]);
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("cannot read topology"));
}

/// Runtime failures (valid flags, bad file contents) must exit nonzero with
/// exactly one `error:` line — no usage dump, no panic backtrace.
fn assert_one_line_error(out: &Output, expect: &str) {
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr.clone()).unwrap();
    assert!(err.contains(expect), "stderr missing `{expect}`: {err}");
    assert_eq!(
        err.lines().count(),
        1,
        "expected one-line error, got: {err}"
    );
    assert!(err.starts_with("error:"), "stderr: {err}");
    assert!(!err.contains("USAGE"), "runtime errors must not dump usage");
    assert!(!err.contains("panicked"), "stderr: {err}");
}

#[test]
fn malformed_config_is_a_one_line_error() {
    let dir = temp_dir("badcfg");
    let cfg = dir.join("bad.cfg");
    fs::write(&cfg, "ArrayHeight : not_a_number\n").unwrap();
    let out = scale_sim(&["--config", cfg.to_str().unwrap(), "--network", "alexnet"]);
    assert_one_line_error(&out, "config parse error");
}

#[test]
fn malformed_topology_csv_is_a_one_line_error() {
    let dir = temp_dir("badtopo");
    let topo = dir.join("bad.csv");
    fs::write(&topo, "Conv1,230,230,7,7\n").unwrap(); // wrong column count
    let out = scale_sim(&["--topology", topo.to_str().unwrap()]);
    assert_one_line_error(&out, "topology parse error");
}

#[test]
fn bad_flags_still_dump_usage() {
    let out = scale_sim(&["--bogus"]);
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("unknown argument"));
    assert!(err.contains("USAGE"), "argument errors keep the usage dump");
}

#[test]
fn help_mentions_subcommands() {
    let out = scale_sim(&["--help"]);
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("serve"));
    assert!(text.contains("batch"));
    assert!(text.contains("sweep"));
    assert!(text.contains("/simulate"));
}

/// The sweep acceptance scenario at CLI scope: a plan that lists its MAC
/// budget twice yields byte-identical output at any `--jobs` count, and
/// the in-process cache serves every duplicate point (exactly 50% hits).
#[test]
fn sweep_is_deterministic_and_counts_cache_hits() {
    let dir = temp_dir("sweep");
    let plan = dir.join("tiny.plan");
    fs::write(
        &plan,
        "name = e2e\nworkload = TF1\nbudget = 1024, 1024\n\
         config.IfmapSramSz = 64\nconfig.FilterSramSz = 64\nconfig.OfmapSramSz = 32\n",
    )
    .unwrap();

    let serial_csv = dir.join("serial.csv");
    let serial = scale_sim(&[
        "sweep",
        "--plan",
        plan.to_str().unwrap(),
        "--jobs",
        "1",
        "--output",
        serial_csv.to_str().unwrap(),
    ]);
    assert!(
        serial.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&serial.stderr)
    );
    let summary = String::from_utf8(serial.stderr).unwrap();
    assert!(
        summary.contains("10 points (5 simulations, 5 cache hits)"),
        "summary: {summary}"
    );
    assert!(summary.contains("sweet spot"), "summary: {summary}");

    let parallel_csv = dir.join("parallel.csv");
    let parallel = scale_sim(&[
        "sweep",
        "--plan",
        plan.to_str().unwrap(),
        "--jobs",
        "8",
        "--output",
        parallel_csv.to_str().unwrap(),
    ]);
    assert!(parallel.status.success());
    let serial_rows = fs::read_to_string(&serial_csv).unwrap();
    let parallel_rows = fs::read_to_string(&parallel_csv).unwrap();
    assert_eq!(
        serial_rows, parallel_rows,
        "sweep output must not depend on the worker count"
    );
    assert!(serial_rows.starts_with("workload,budget,partitions,"));
    assert_eq!(serial_rows.lines().count(), 11, "header + 10 points");

    // JSONL goes to stdout when no --output is given.
    let jsonl = scale_sim(&[
        "sweep",
        "--plan",
        plan.to_str().unwrap(),
        "--format",
        "jsonl",
    ]);
    assert!(jsonl.status.success());
    let text = String::from_utf8(jsonl.stdout).unwrap();
    assert_eq!(text.lines().count(), 10);
    assert!(text.lines().all(|l| l.starts_with("{\"workload\":\"TF1\"")));
}

/// The tracing acceptance scenario: `explore --trace-out` on the committed
/// smoke plan emits valid Chrome trace-event JSON with the stage-0/1/2
/// spans nested under `explore.run`, per-worker sweep spans, and per-layer
/// simulator spans.
#[test]
fn explore_trace_out_emits_nested_chrome_trace() {
    use scalesim_server::Json;

    let dir = temp_dir("trace");
    let plan = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../examples/explore_smoke.plan");
    let trace = dir.join("trace.json");
    let csv = dir.join("explore.csv");
    let out = scale_sim(&[
        "explore",
        "--plan",
        plan.to_str().unwrap(),
        "--budget",
        "4",
        "--jobs",
        "2",
        "--output",
        csv.to_str().unwrap(),
        "--trace-out",
        trace.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("wrote trace"), "stderr: {stderr}");

    let text = fs::read_to_string(&trace).unwrap();
    let json = Json::parse(&text).expect("trace file is valid JSON");
    assert_eq!(
        json.get("displayTimeUnit").and_then(Json::as_str),
        Some("ms")
    );
    let events = json
        .get("traceEvents")
        .and_then(Json::as_array)
        .expect("traceEvents[]");

    // Every complete event has the Chrome trace-event shape.
    let complete: Vec<&Json> = events
        .iter()
        .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
        .collect();
    assert!(!complete.is_empty(), "spans were recorded");
    for event in &complete {
        assert!(event.get("ts").and_then(Json::as_u64).is_some());
        assert!(event.get("dur").and_then(Json::as_u64).is_some());
        assert!(event.get("tid").and_then(Json::as_u64).is_some());
        assert!(event.get("name").and_then(Json::as_str).is_some());
    }

    let named = |name: &str| -> Vec<&&Json> {
        complete
            .iter()
            .filter(|e| e.get("name").and_then(Json::as_str) == Some(name))
            .collect()
    };
    for required in [
        "explore.run",
        "explore.stage0",
        "explore.stage1",
        "explore.stage2",
        "sweep.worker",
        "run_layer",
    ] {
        assert!(!named(required).is_empty(), "missing span `{required}`");
    }

    // The three stage spans nest under the single explore.run span.
    let span_id = |e: &Json| {
        e.get("args")
            .and_then(|a| a.get("id"))
            .and_then(Json::as_u64)
    };
    let parent_id = |e: &Json| {
        e.get("args")
            .and_then(|a| a.get("parent"))
            .and_then(Json::as_u64)
    };
    let runs = named("explore.run");
    assert_eq!(runs.len(), 1, "exactly one explore.run span");
    let run_id = span_id(runs[0]).unwrap();
    for stage in ["explore.stage0", "explore.stage1", "explore.stage2"] {
        for event in named(stage) {
            assert_eq!(
                parent_id(event),
                Some(run_id),
                "{stage} must nest under explore.run"
            );
        }
    }
}

#[test]
fn sweep_error_paths_are_one_line() {
    let out = scale_sim(&["sweep"]);
    assert_one_line_error(&out, "--plan");

    let out = scale_sim(&["sweep", "--plan", "/nonexistent/x.plan"]);
    assert_one_line_error(&out, "cannot read plan");

    let dir = temp_dir("sweepbad");
    let plan = dir.join("bad.plan");
    fs::write(&plan, "frobnicate = yes\n").unwrap();
    let out = scale_sim(&["sweep", "--plan", plan.to_str().unwrap()]);
    assert_one_line_error(&out, "plan parse error");
}

#[test]
fn serve_with_bad_flag_is_a_one_line_error() {
    let out = scale_sim(&["serve", "--frobnicate"]);
    assert_one_line_error(&out, "unknown serve argument");
}

#[test]
fn batch_without_manifest_is_a_one_line_error() {
    let out = scale_sim(&["batch"]);
    assert_one_line_error(&out, "--manifest");
}

/// The batch acceptance scenario: a manifest listing every ResNet-50 layer
/// twice must report exactly a 50% cache-hit rate and produce per-layer
/// rows byte-identical to a sequential single-shot CLI run.
#[test]
fn batch_resnet50_duplicates_hit_exactly_fifty_percent() {
    let dir = temp_dir("batch50");

    // Sequential ground truth: one full run, REPORT.csv row per layer.
    let seq_out = scale_sim(&["--network", "resnet50", "--output", dir.to_str().unwrap()]);
    assert!(seq_out.status.success());
    let sequential = fs::read_to_string(dir.join("REPORT.csv")).unwrap();
    let mut rows = sequential.lines();
    let header = rows.next().unwrap();
    let rows: Vec<&str> = rows.collect();
    assert_eq!(rows.len(), 54, "resnet50 has 54 layers");

    // Manifest: each layer as its own job, listed twice back to back.
    let names = scalesim_topology::networks::resnet50();
    let manifest: String = names
        .iter()
        .flat_map(|layer| {
            let line = format!("network=resnet50 layer={}\n", layer.name());
            [line.clone(), line]
        })
        .collect();
    let manifest_path = dir.join("manifest.txt");
    fs::write(&manifest_path, manifest).unwrap();

    let batch_csv = dir.join("batch.csv");
    let out = scale_sim(&[
        "batch",
        "--manifest",
        manifest_path.to_str().unwrap(),
        "--jobs",
        "8",
        "--output",
        batch_csv.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let summary = String::from_utf8(out.stderr).unwrap();
    assert!(
        summary.contains("cache-hit rate 50.0% (54/108)"),
        "summary: {summary}"
    );
    assert!(summary.contains("54 simulations"), "summary: {summary}");

    // Byte-identical per-layer rows, in manifest order (each row twice).
    let mut expected = String::from(header);
    expected.push('\n');
    for row in &rows {
        expected.push_str(row);
        expected.push('\n');
        expected.push_str(row);
        expected.push('\n');
    }
    let batch = fs::read_to_string(&batch_csv).unwrap();
    assert_eq!(batch, expected, "batch rows must match sequential runs");
}
