//! End-to-end graceful shutdown of `scale-sim serve`: a real process, a
//! real SIGTERM, a clean exit-code-0 drain.

#![cfg(unix)]

use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use scalesim_server::http::client::request;

/// Reaps the child on panic so a failing test never leaks a server.
struct ChildGuard(Child);

impl Drop for ChildGuard {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

#[test]
fn sigterm_drains_and_exits_zero() {
    let child = Command::new(env!("CARGO_BIN_EXE_scale-sim"))
        .args([
            "serve",
            "--port",
            "0",
            "--workers",
            "1",
            "--grace-ms",
            "8000",
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("serve starts");
    let mut child = ChildGuard(child);
    let stderr = child.0.stderr.take().expect("stderr piped");
    let mut lines = BufReader::new(stderr).lines();

    // The startup banner announces the ephemeral port.
    let addr: SocketAddr = loop {
        let line = lines
            .next()
            .expect("serve exited before announcing its address")
            .expect("read stderr");
        if let Some(rest) = line.split("listening on http://").nth(1) {
            break rest
                .split_whitespace()
                .next()
                .expect("address after scheme")
                .parse()
                .expect("parseable address");
        }
    };
    // Drain the rest of stderr in the background so the child never
    // blocks on a full pipe, and keep it for assertions after exit.
    let tail = std::thread::spawn(move || {
        let mut text = String::new();
        for line in lines.map_while(Result::ok) {
            text.push_str(&line);
            text.push('\n');
        }
        text
    });

    let health = request(addr, "GET", "/healthz", None).expect("healthz");
    assert_eq!(health.status, 200);
    assert!(health.body.contains("\"ok\""));

    let pid = child.0.id().to_string();
    let killed = Command::new("kill")
        .args(["-TERM", &pid])
        .status()
        .expect("kill runs");
    assert!(killed.success());

    // Clean exit within the grace period (plus signal-poll slack).
    let deadline = Instant::now() + Duration::from_secs(15);
    let status = loop {
        if let Some(status) = child.0.try_wait().expect("try_wait") {
            break status;
        }
        assert!(
            Instant::now() < deadline,
            "serve did not exit after SIGTERM"
        );
        std::thread::sleep(Duration::from_millis(50));
    };
    assert!(status.success(), "drained serve exits 0, got {status:?}");
    let stderr_text = tail.join().unwrap();
    assert!(
        stderr_text.contains("draining"),
        "shutdown is announced, got: {stderr_text}"
    );
    assert!(stderr_text.contains("drained cleanly"));
}
