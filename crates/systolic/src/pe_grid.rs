//! A register-level golden model of the systolic array.
//!
//! The paper validates SCALE-Sim against an RTL implementation (Fig. 4).
//! That RTL is not public, so this module plays its role: a *literal*
//! simulation of the MAC grid in which every processing element owns operand
//! registers, data moves only over neighbour-to-neighbour links (one hop per
//! cycle, store-and-forward), partial sums reduce exactly the way the
//! hardware wires them, and outputs leave through the physical edge ports
//! one element per port per cycle.
//!
//! Unlike the vectorized trace engines, nothing here is scheduled by a
//! closed-form formula — timing *emerges* from the register mechanics. The
//! model also computes real values, so a run both cross-checks the engines'
//! cycle counts and proves the dataflows compute the correct product.
//!
//! ```
//! use scalesim_systolic::pe_grid::{run, Matrix};
//! use scalesim_systolic::ArrayShape;
//! use scalesim_topology::Dataflow;
//!
//! let a = Matrix::from_fn(6, 4, |i, j| (i + 2 * j) as i64);
//! let b = Matrix::from_fn(4, 5, |i, j| (3 * i + j) as i64);
//! let golden = run(&a, &b, ArrayShape::square(4), Dataflow::OutputStationary);
//! assert_eq!(golden.output, a.matmul(&b));
//! ```

use scalesim_topology::Dataflow;

use crate::fold::FoldPlan;
use crate::ArrayShape;

/// A dense row-major integer matrix (the golden model computes exact values).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<i64>,
}

impl Matrix {
    /// Creates a zero matrix.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be nonzero");
        Matrix {
            rows,
            cols,
            data: vec![0; rows * cols],
        }
    }

    /// Creates a matrix from a generator function over `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, f: impl Fn(usize, usize) -> i64) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Reference matrix product (naive triple loop).
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "inner dimensions must agree");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self[(i, k)];
                for j in 0..other.cols {
                    out[(i, j)] += aik * other[(k, j)];
                }
            }
        }
        out
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = i64;

    fn index(&self, (i, j): (usize, usize)) -> &i64 {
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut i64 {
        &mut self.data[i * self.cols + j]
    }
}

/// Result of a golden-model run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GoldenRun {
    /// Total cycles, folds serialized — emergent, not formula-driven.
    pub cycles: u64,
    /// The computed `M × N` product.
    pub output: Matrix,
}

/// Runs `a × b` on a register-level `array` with the given dataflow,
/// folding exactly like the trace engines (same [`FoldPlan`] tiling) but
/// deriving all timing from PE mechanics.
///
/// # Panics
///
/// Panics if the inner matrix dimensions disagree, or if the internal
/// register machine deadlocks (which would indicate a modeling bug — the
/// test suite exercises this heavily).
pub fn run(a: &Matrix, b: &Matrix, array: ArrayShape, dataflow: Dataflow) -> GoldenRun {
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
    let shape =
        scalesim_topology::GemmShape::new(a.rows() as u64, a.cols() as u64, b.cols() as u64);
    let dims = shape.project(dataflow);
    let mut output = Matrix::zeros(a.rows(), b.cols());
    let mut cycles = 0u64;
    for fold in FoldPlan::new(&dims, array) {
        let local = match dataflow {
            Dataflow::OutputStationary => fold_os(
                a,
                b,
                fold.row_base,
                fold.col_base,
                fold.rows_used,
                fold.cols_used,
                &mut output,
            ),
            Dataflow::WeightStationary => fold_ws(
                a,
                b,
                fold.row_base,
                fold.col_base,
                fold.rows_used,
                fold.cols_used,
                &mut output,
            ),
            Dataflow::InputStationary => fold_is(
                a,
                b,
                fold.row_base,
                fold.col_base,
                fold.rows_used,
                fold.cols_used,
                &mut output,
            ),
        };
        cycles += local;
    }
    GoldenRun { cycles, output }
}

/// Runs `a × b` with the OS dataflow and a *separate output data plane*
/// (the alternative Section II-A of the paper mentions): results leave
/// over dedicated wiring the cycle after their PE completes, so a fold
/// ends one cycle after its last MAC instead of serializing a drain
/// through the array. Values are still computed by the register machine.
pub fn run_os_separate_plane(a: &Matrix, b: &Matrix, array: ArrayShape) -> GoldenRun {
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
    let shape =
        scalesim_topology::GemmShape::new(a.rows() as u64, a.cols() as u64, b.cols() as u64);
    let dims = shape.project(Dataflow::OutputStationary);
    let mut output = Matrix::zeros(a.rows(), b.cols());
    let mut cycles = 0u64;
    for fold in FoldPlan::new(&dims, array) {
        cycles += fold_os_plane(
            a,
            b,
            fold.row_base,
            fold.col_base,
            fold.rows_used,
            fold.cols_used,
            &mut output,
        );
    }
    GoldenRun { cycles, output }
}

/// OS fold with outputs exiting over a dedicated plane: same operand
/// mechanics as [`fold_os`], but each PE's result is collected the cycle
/// after its final accumulate, and the fold ends when the last result is
/// out.
fn fold_os_plane(
    a: &Matrix,
    b: &Matrix,
    m_base: u64,
    n_base: u64,
    ru: u64,
    cu: u64,
    output: &mut Matrix,
) -> u64 {
    let (ru, cu) = (ru as usize, cu as usize);
    let (m_base, n_base) = (m_base as usize, n_base as usize);
    let t = a.cols();

    let idx = |i: usize, j: usize| i * cu + j;
    let mut a_reg: Vec<Option<i64>> = vec![None; ru * cu];
    let mut b_reg: Vec<Option<i64>> = vec![None; ru * cu];
    let mut acc = vec![0i64; ru * cu];
    let mut mac_count = vec![0usize; ru * cu];
    let mut collected = 0usize;
    let mut last_event = 0u64;
    let cap = cycle_cap(ru, cu, t);

    let mut lc = 0u64;
    while collected < ru * cu {
        let mut new_a = vec![None; ru * cu];
        let mut new_b = vec![None; ru * cu];
        for i in 0..ru {
            for j in 0..cu {
                new_a[idx(i, j)] = if j == 0 {
                    lc.checked_sub(i as u64)
                        .filter(|&k| k < t as u64)
                        .map(|k| a[(m_base + i, k as usize)])
                } else {
                    a_reg[idx(i, j - 1)]
                };
                new_b[idx(i, j)] = if i == 0 {
                    lc.checked_sub(j as u64)
                        .filter(|&k| k < t as u64)
                        .map(|k| b[(k as usize, n_base + j)])
                } else {
                    b_reg[idx(i - 1, j)]
                };
            }
        }
        // Output plane: a PE whose accumulation completed *last* cycle
        // (count reached t, register latency one hop) ships its result now.
        for i in 0..ru {
            for j in 0..cu {
                if mac_count[idx(i, j)] == t {
                    output[(m_base + i, n_base + j)] = acc[idx(i, j)];
                    mac_count[idx(i, j)] += 1; // mark shipped
                    collected += 1;
                    last_event = lc;
                }
            }
        }
        a_reg = new_a;
        b_reg = new_b;
        for i in 0..ru {
            for j in 0..cu {
                if let (Some(av), Some(bv)) = (a_reg[idx(i, j)], b_reg[idx(i, j)]) {
                    acc[idx(i, j)] += av * bv;
                    mac_count[idx(i, j)] += 1;
                    last_event = lc;
                }
            }
        }
        assert!(lc < 4 * cap, "OS separate-plane golden model runaway");
        lc += 1;
    }
    last_event + 1
}

/// Hard cap on fold cycles: generous multiple of any legitimate schedule.
fn cycle_cap(ru: usize, cu: usize, t: usize) -> u64 {
    (8 * (ru + cu + t) + 64) as u64
}

/// Output-stationary fold: operands stream through skewed edge ports, each
/// PE accumulates in place, then columns drain through their bottom ports.
fn fold_os(
    a: &Matrix,
    b: &Matrix,
    m_base: u64,
    n_base: u64,
    ru: u64,
    cu: u64,
    output: &mut Matrix,
) -> u64 {
    let (ru, cu) = (ru as usize, cu as usize);
    let (m_base, n_base) = (m_base as usize, n_base as usize);
    let t = a.cols();

    let idx = |i: usize, j: usize| i * cu + j;
    let mut a_reg: Vec<Option<i64>> = vec![None; ru * cu];
    let mut b_reg: Vec<Option<i64>> = vec![None; ru * cu];
    let mut acc = vec![0i64; ru * cu];
    let mut mac_count = vec![0usize; ru * cu];
    // Per-column drain state: number of values already shifted out.
    let mut drained = vec![0usize; cu];
    let mut last_event = 0u64;
    let cap = cycle_cap(ru, cu, t);

    let mut lc = 0u64;
    loop {
        // --- register update (synchronous): new values from old state ---
        let mut new_a = vec![None; ru * cu];
        let mut new_b = vec![None; ru * cu];
        for i in 0..ru {
            for j in 0..cu {
                new_a[idx(i, j)] = if j == 0 {
                    // Left port of row i carries A[m_base+i][k] at lc = i + k.
                    lc.checked_sub(i as u64)
                        .filter(|&k| k < t as u64)
                        .map(|k| a[(m_base + i, k as usize)])
                } else {
                    a_reg[idx(i, j - 1)]
                };
                new_b[idx(i, j)] = if i == 0 {
                    // Top port of column j carries B[k][n_base+j] at lc = j + k.
                    lc.checked_sub(j as u64)
                        .filter(|&k| k < t as u64)
                        .map(|k| b[(k as usize, n_base + j)])
                } else {
                    b_reg[idx(i - 1, j)]
                };
            }
        }
        a_reg = new_a;
        b_reg = new_b;

        // --- drain: a column whose PEs were all done *by the end of the
        //     previous cycle* shifts one value per cycle through its bottom
        //     port (bottom-most value first). Checking before this cycle's
        //     MAC step enforces the one-cycle store-and-forward latency
        //     between the final accumulate and the first exit. ---
        let mut any_activity = false;
        for j in 0..cu {
            if drained[j] < ru && (0..ru).all(|i| mac_count[idx(i, j)] == t) {
                let src_row = ru - 1 - drained[j];
                output[(m_base + src_row, n_base + j)] = acc[idx(src_row, j)];
                drained[j] += 1;
                any_activity = true;
                last_event = lc;
            }
        }

        // --- MAC: every PE with both operands valid multiplies in place ---
        for i in 0..ru {
            for j in 0..cu {
                if let (Some(av), Some(bv)) = (a_reg[idx(i, j)], b_reg[idx(i, j)]) {
                    acc[idx(i, j)] += av * bv;
                    mac_count[idx(i, j)] += 1;
                    any_activity = true;
                    last_event = lc;
                }
            }
        }

        if drained.iter().all(|&d| d == ru) {
            break;
        }
        assert!(
            lc < cap || any_activity,
            "OS golden model deadlocked at cycle {lc}"
        );
        assert!(lc < 4 * cap, "OS golden model runaway");
        lc += 1;
    }
    last_event + 1
}

/// Weight-stationary fold: weights shift down into place, IFMAP streams
/// from the left with row skew, partial sums reduce down each column and
/// exit through the bottom ports.
fn fold_ws(
    a: &Matrix,
    b: &Matrix,
    k_base: u64,
    n_base: u64,
    ru: u64,
    cu: u64,
    output: &mut Matrix,
) -> u64 {
    let (ru, cu) = (ru as usize, cu as usize);
    let (k_base, n_base) = (k_base as usize, n_base as usize);
    let t = a.rows(); // OFMAP pixels unroll in time

    let idx = |i: usize, j: usize| i * cu + j;

    // --- fill phase: one weight row injected per cycle, shifting down ---
    let mut w: Vec<Option<i64>> = vec![None; ru * cu];
    for p in 0..ru {
        for i in (1..ru).rev() {
            for j in 0..cu {
                w[idx(i, j)] = w[idx(i - 1, j)];
            }
        }
        for j in 0..cu {
            w[idx(0, j)] = Some(b[(k_base + (ru - 1 - p), n_base + j)]);
        }
    }
    // After r' shifts, row i must hold B[k_base + i][·].
    debug_assert!(
        (0..ru).all(|i| (0..cu).all(|j| { w[idx(i, j)] == Some(b[(k_base + i, n_base + j)]) }))
    );

    // --- stream phase ---
    // a-values travel right; (value, pixel-tag) pairs. Partial sums travel
    // down with the same tag.
    let mut a_reg: Vec<Option<(i64, usize)>> = vec![None; ru * cu];
    let mut psum: Vec<Option<(i64, usize)>> = vec![None; ru * cu];
    let mut produced = 0usize;
    let expected = t * cu;
    let mut last_event = ru as u64 - 1; // fill already consumed r' cycles
    let cap = cycle_cap(ru, cu, t);

    let mut lc = ru as u64;
    while produced < expected {
        let mut new_a = vec![None; ru * cu];
        let mut new_p = vec![None; ru * cu];
        for i in 0..ru {
            for j in 0..cu {
                let a_in = if j == 0 {
                    // Left port of row i carries (pixel mt, window k_base+i)
                    // at lc = r' + mt + i.
                    lc.checked_sub(ru as u64 + i as u64)
                        .filter(|&mt| mt < t as u64)
                        .map(|mt| (a[(mt as usize, k_base + i)], mt as usize))
                } else {
                    a_reg[idx(i, j - 1)]
                };
                new_a[idx(i, j)] = a_in;
                if let Some((av, mt)) = a_in {
                    let upstream = if i == 0 {
                        Some((0, mt))
                    } else {
                        psum[idx(i - 1, j)]
                    };
                    let (pv, pt) = upstream.expect("psum wave must align with operand wave");
                    assert_eq!(pt, mt, "psum tag skew in WS golden model");
                    let weight = w[idx(i, j)].expect("weights are resident after fill");
                    let out = pv + weight * av;
                    new_p[idx(i, j)] = Some((out, mt));
                    if i == ru - 1 {
                        output[(mt, n_base + j)] += out;
                        produced += 1;
                        last_event = lc;
                    }
                }
            }
        }
        a_reg = new_a;
        psum = new_p;
        assert!(lc < 4 * cap, "WS golden model runaway");
        lc += 1;
    }
    last_event + 1
}

/// Input-stationary fold: the IFMAP tile is resident (column j holds pixel
/// j's window), filters stream from the left, partial sums reduce down.
fn fold_is(
    a: &Matrix,
    b: &Matrix,
    k_base: u64,
    m_base: u64,
    ru: u64,
    cu: u64,
    output: &mut Matrix,
) -> u64 {
    let (ru, cu) = (ru as usize, cu as usize);
    let (k_base, m_base) = (k_base as usize, m_base as usize);
    let t = b.cols(); // filters unroll in time

    let idx = |i: usize, j: usize| i * cu + j;

    // --- fill phase: ifmap rows shift down into place ---
    let mut s: Vec<Option<i64>> = vec![None; ru * cu];
    for p in 0..ru {
        for i in (1..ru).rev() {
            for j in 0..cu {
                s[idx(i, j)] = s[idx(i - 1, j)];
            }
        }
        for j in 0..cu {
            s[idx(0, j)] = Some(a[(m_base + j, k_base + (ru - 1 - p))]);
        }
    }
    debug_assert!(
        (0..ru).all(|i| (0..cu).all(|j| { s[idx(i, j)] == Some(a[(m_base + j, k_base + i)]) }))
    );

    // --- stream phase: filters travel right, psums travel down ---
    let mut b_reg: Vec<Option<(i64, usize)>> = vec![None; ru * cu];
    let mut psum: Vec<Option<(i64, usize)>> = vec![None; ru * cu];
    let mut produced = 0usize;
    let expected = t * cu;
    let mut last_event = ru as u64 - 1;
    let cap = cycle_cap(ru, cu, t);

    let mut lc = ru as u64;
    while produced < expected {
        let mut new_b = vec![None; ru * cu];
        let mut new_p = vec![None; ru * cu];
        for i in 0..ru {
            for j in 0..cu {
                let b_in = if j == 0 {
                    lc.checked_sub(ru as u64 + i as u64)
                        .filter(|&nt| nt < t as u64)
                        .map(|nt| (b[(k_base + i, nt as usize)], nt as usize))
                } else {
                    b_reg[idx(i, j - 1)]
                };
                new_b[idx(i, j)] = b_in;
                if let Some((bv, nt)) = b_in {
                    let upstream = if i == 0 {
                        Some((0, nt))
                    } else {
                        psum[idx(i - 1, j)]
                    };
                    let (pv, pt) = upstream.expect("psum wave must align with operand wave");
                    assert_eq!(pt, nt, "psum tag skew in IS golden model");
                    let stationary = s[idx(i, j)].expect("ifmap is resident after fill");
                    let out = pv + stationary * bv;
                    new_p[idx(i, j)] = Some((out, nt));
                    if i == ru - 1 {
                        output[(m_base + j, nt)] += out;
                        produced += 1;
                        last_event = lc;
                    }
                }
            }
        }
        b_reg = new_b;
        psum = new_p;
        assert!(lc < 4 * cap, "IS golden model runaway");
        lc += 1;
    }
    last_event + 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::analyze;
    use scalesim_topology::GemmShape;

    fn matrices(m: usize, k: usize, n: usize) -> (Matrix, Matrix) {
        // Deterministic pseudo-random small values.
        let a = Matrix::from_fn(m, k, |i, j| ((i * 31 + j * 17) % 13) as i64 - 6);
        let b = Matrix::from_fn(k, n, |i, j| ((i * 7 + j * 23) % 11) as i64 - 5);
        (a, b)
    }

    #[test]
    fn matrix_indexing_and_matmul() {
        let (a, b) = matrices(3, 4, 2);
        let c = a.matmul(&b);
        let mut expected = 0;
        for k in 0..4 {
            expected += a[(1, k)] * b[(k, 0)];
        }
        assert_eq!(c[(1, 0)], expected);
    }

    #[test]
    fn os_values_and_cycles_single_fold() {
        let (a, b) = matrices(4, 5, 4);
        let g = run(&a, &b, ArrayShape::square(4), Dataflow::OutputStationary);
        assert_eq!(g.output, a.matmul(&b));
        // Eq. 1: 2*4 + 4 + 5 - 2 = 15.
        assert_eq!(g.cycles, 15);
    }

    #[test]
    fn ws_values_and_cycles_single_fold() {
        let (a, b) = matrices(5, 4, 4); // S_R = k = 4 fits, T = m = 5
        let g = run(&a, &b, ArrayShape::square(4), Dataflow::WeightStationary);
        assert_eq!(g.output, a.matmul(&b));
        assert_eq!(g.cycles, 2 * 4 + 4 + 5 - 2);
    }

    #[test]
    fn is_values_and_cycles_single_fold() {
        let (a, b) = matrices(4, 4, 5); // S_R = k = 4, S_C = m = 4, T = n = 5
        let g = run(&a, &b, ArrayShape::square(4), Dataflow::InputStationary);
        assert_eq!(g.output, a.matmul(&b));
        assert_eq!(g.cycles, 2 * 4 + 4 + 5 - 2);
    }

    #[test]
    fn golden_cycles_match_engine_for_folded_runs_all_dataflows() {
        let (a, b) = matrices(10, 7, 9);
        let shape = GemmShape::new(10, 7, 9);
        for df in Dataflow::ALL {
            let g = run(&a, &b, ArrayShape::new(4, 4), df);
            assert_eq!(g.output, a.matmul(&b), "{df:?} values");
            let report = analyze(&shape.project(df), ArrayShape::new(4, 4));
            assert_eq!(g.cycles, report.total_cycles, "{df:?} cycles");
        }
    }

    #[test]
    fn golden_handles_rectangular_arrays() {
        let (a, b) = matrices(9, 6, 11);
        let shape = GemmShape::new(9, 6, 11);
        for df in Dataflow::ALL {
            for array in [ArrayShape::new(2, 8), ArrayShape::new(8, 2)] {
                let g = run(&a, &b, array, df);
                assert_eq!(g.output, a.matmul(&b), "{df:?} on {array}");
                let report = analyze(&shape.project(df), array);
                assert_eq!(g.cycles, report.total_cycles, "{df:?} on {array}");
            }
        }
    }

    #[test]
    fn separate_plane_variant_matches_its_analytic_schedule() {
        // Values identical to the baseline; cycles per full fold drop from
        // 2r' + c' + T - 2 to r' + c' + T - 1.
        let (a, b) = matrices(8, 6, 8);
        let array = ArrayShape::square(4);
        let plane = run_os_separate_plane(&a, &b, array);
        assert_eq!(plane.output, a.matmul(&b));
        let folds = 2 * 2;
        assert_eq!(plane.cycles, folds * (4 + 4 + 6 - 1));
        let baseline = run(&a, &b, array, Dataflow::OutputStationary);
        assert_eq!(baseline.cycles - plane.cycles, folds * (4 - 1));
    }

    #[test]
    fn separate_plane_handles_ragged_folds() {
        let (a, b) = matrices(5, 3, 7);
        let plane = run_os_separate_plane(&a, &b, ArrayShape::new(4, 4));
        assert_eq!(plane.output, a.matmul(&b));
        // Folds: (4,4),(4,3),(1,4),(1,3) with durations r'+c'+t-1.
        let expected: u64 = [(4, 4), (4, 3), (1, 4), (1, 3)]
            .iter()
            .map(|&(r, c): &(u64, u64)| r + c + 3 - 1)
            .sum();
        assert_eq!(plane.cycles, expected);
    }

    #[test]
    fn degenerate_one_by_one_workload() {
        let a = Matrix::from_fn(1, 1, |_, _| 3);
        let b = Matrix::from_fn(1, 1, |_, _| -4);
        for df in Dataflow::ALL {
            let g = run(&a, &b, ArrayShape::square(4), df);
            assert_eq!(g.output[(0, 0)], -12, "{df:?}");
            // Eq. 1 with r'=c'=T=1: 2+1+1-2 = 2 cycles... except WS/IS
            // write the single output the same cycle the bottom PE fires.
            let shape = GemmShape::new(1, 1, 1);
            let report = analyze(&shape.project(df), ArrayShape::square(4));
            assert_eq!(g.cycles, report.total_cycles, "{df:?}");
        }
    }
}
