//! Fold-granular demand streams for the DRAM model.
//!
//! The double-buffered DRAM model (in `scalesim-memory`) only needs to know,
//! per fold: how long the fold computes and which *unique* addresses it
//! touches, in first-use order. Enumerating that directly is orders of
//! magnitude cheaper than generating the full per-cycle trace, and the test
//! suite proves the two views consistent (every address a fold demands here
//! appears in its trace window, and vice versa).

use scalesim_memory::{AddrRuns, AddrSet, AddressMap, IntervalSet};
use scalesim_topology::{Dataflow, MappedDims};

use crate::fold::{Fold, FoldPlan};
use crate::ArrayShape;

/// One fold's memory demand.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FoldDemand {
    /// The fold this demand belongs to.
    pub fold: Fold,
    /// Unique operand-A (IFMAP) addresses, first-use order.
    pub a: Vec<u64>,
    /// Unique operand-B (filter) addresses, first-use order.
    pub b: Vec<u64>,
    /// Partial-sum addresses re-read for accumulation (WS/IS row folds
    /// beyond the first; empty otherwise).
    pub o_spill: Vec<u64>,
    /// Output addresses written by this fold.
    pub o_writes: Vec<u64>,
}

/// Iterator over the per-fold demands of a workload. Created by
/// [`fold_demands`].
#[derive(Debug)]
pub struct FoldDemands<'a, M: ?Sized> {
    dims: MappedDims,
    map: &'a M,
    plan: FoldPlan,
}

/// Enumerates each fold's unique address demand for `dims` on `array`.
///
/// ```
/// use scalesim_systolic::{fold_demands, ArrayShape};
/// use scalesim_memory::{GemmAddressMap, RegionOffsets};
/// use scalesim_topology::{Dataflow, GemmShape};
///
/// let shape = GemmShape::new(8, 4, 8);
/// let dims = shape.project(Dataflow::OutputStationary);
/// let map = GemmAddressMap::from_shape(shape, RegionOffsets::default());
/// let folds: Vec<_> = fold_demands(&dims, ArrayShape::square(4), &map).collect();
/// assert_eq!(folds.len(), 4);
/// assert_eq!(folds[0].a.len(), 4 * 4); // 4 rows x T=4 unique elements
/// ```
pub fn fold_demands<'a, M: AddressMap + ?Sized>(
    dims: &MappedDims,
    array: ArrayShape,
    map: &'a M,
) -> FoldDemands<'a, M> {
    FoldDemands {
        dims: *dims,
        map,
        plan: FoldPlan::new(dims, array),
    }
}

impl<'a, M: AddressMap + ?Sized> Iterator for FoldDemands<'a, M> {
    type Item = FoldDemand;

    fn next(&mut self) -> Option<FoldDemand> {
        let fold = self.plan.next()?;
        Some(demand_for_fold(&self.dims, &fold, self.map))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.plan.size_hint()
    }
}

impl<'a, M: AddressMap + ?Sized> ExactSizeIterator for FoldDemands<'a, M> {}

/// Pushes `addr` if it has not been seen yet (first-use-order dedup).
fn push_unique(seen: &mut AddrSet, out: &mut Vec<u64>, addr: u64) {
    if seen.insert(addr) {
        out.push(addr);
    }
}

fn demand_for_fold<M: AddressMap + ?Sized>(dims: &MappedDims, fold: &Fold, map: &M) -> FoldDemand {
    let t = dims.temporal;
    let ru = fold.rows_used;
    let cu = fold.cols_used;
    let mut a = Vec::new();
    let mut b = Vec::new();
    let mut o_spill = Vec::new();
    let mut o_writes = Vec::new();
    // Only IFMAP-side (operand A) addresses can repeat within a fold
    // (convolution window overlap); B and O coordinates are distinct by
    // construction, so they skip the dedup set.
    let mut a_seen = AddrSet::default();

    match dims.dataflow {
        Dataflow::OutputStationary => {
            for i in 0..ru {
                let m = fold.row_base + i;
                for k in 0..t {
                    push_unique(&mut a_seen, &mut a, map.a(m, k));
                }
            }
            for j in 0..cu {
                let n = fold.col_base + j;
                for k in 0..t {
                    b.push(map.b(k, n));
                }
            }
            for i in 0..ru {
                let m = fold.row_base + i;
                for j in 0..cu {
                    o_writes.push(map.o(m, fold.col_base + j));
                }
            }
        }
        Dataflow::WeightStationary => {
            let k_base = fold.row_base;
            let n_base = fold.col_base;
            for i in 0..ru {
                for j in 0..cu {
                    b.push(map.b(k_base + i, n_base + j));
                }
            }
            for mt in 0..t {
                for i in 0..ru {
                    push_unique(&mut a_seen, &mut a, map.a(mt, k_base + i));
                }
            }
            let spill = fold.fr > 0;
            for mt in 0..t {
                for j in 0..cu {
                    let addr = map.o(mt, n_base + j);
                    if spill {
                        o_spill.push(addr);
                    }
                    o_writes.push(addr);
                }
            }
        }
        Dataflow::InputStationary => {
            let k_base = fold.row_base;
            let m_base = fold.col_base;
            for j in 0..cu {
                for i in 0..ru {
                    push_unique(&mut a_seen, &mut a, map.a(m_base + j, k_base + i));
                }
            }
            for nt in 0..t {
                for i in 0..ru {
                    b.push(map.b(k_base + i, nt));
                }
            }
            let spill = fold.fr > 0;
            for nt in 0..t {
                for j in 0..cu {
                    let addr = map.o(m_base + j, nt);
                    if spill {
                        o_spill.push(addr);
                    }
                    o_writes.push(addr);
                }
            }
        }
    }

    FoldDemand {
        fold: *fold,
        a,
        b,
        o_spill,
        o_writes,
    }
}

/// One fold's memory demand in run-length-compressed form — the hot-path
/// equivalent of [`FoldDemand`]. Produced by [`fold_demand_runs`].
///
/// The **A** stream carries *real* IFMAP addresses (convolution window
/// overlap — the reuse the DRAM model measures — lives in the real address
/// structure), deduplicated to first-use order exactly like the legacy
/// enumeration.
///
/// The **B** and **O** streams carry *canonical labels* rather than real
/// addresses: per fold, coordinate `(k, n)` or `(m, n)` maps to a dense
/// label chosen so each loop nest emits maximal runs. The address-map
/// contract guarantees B and O coordinates map to distinct real addresses,
/// so the relabeling is a bijection applied consistently across the layer
/// — and FIFO buffer hit/miss/eviction counts depend only on the equality
/// pattern of the stream, not on the address values. The resulting
/// [`DramSummary`](scalesim_memory::DramSummary) is therefore identical to
/// the legacy element path (the workspace equivalence property suite pins
/// this). Real-address consumers (trace export) keep using
/// [`fold_demands`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FoldDemandRuns {
    /// The fold this demand belongs to.
    pub fold: Fold,
    /// Unique operand-A (IFMAP) address runs, real addresses, first-use
    /// order.
    pub a: AddrRuns,
    /// Operand-B (filter) demand runs, canonical labels.
    pub b: AddrRuns,
    /// Partial-sum re-read runs (WS/IS row folds beyond the first),
    /// canonical labels shared with `o_writes`.
    pub o_spill: AddrRuns,
    /// Output write runs, canonical labels.
    pub o_writes: AddrRuns,
}

impl FoldDemandRuns {
    /// Total demanded elements across all four streams.
    pub fn element_count(&self) -> u64 {
        self.a.element_count()
            + self.b.element_count()
            + self.o_spill.element_count()
            + self.o_writes.element_count()
    }

    /// Total runs across all four streams.
    pub fn run_count(&self) -> u64 {
        (self.a.run_count()
            + self.b.run_count()
            + self.o_spill.run_count()
            + self.o_writes.run_count()) as u64
    }

    /// Empties all four streams, keeping their allocations — the reset
    /// used by [`FoldDemandsRuns::next_into`] scratch reuse.
    pub fn clear(&mut self) {
        self.a.clear();
        self.b.clear();
        self.o_spill.clear();
        self.o_writes.clear();
    }
}

impl Default for FoldDemandRuns {
    /// An empty demand attached to a zeroed placeholder fold — scratch
    /// state for [`FoldDemandsRuns::next_into`], which overwrites it.
    fn default() -> FoldDemandRuns {
        FoldDemandRuns {
            fold: Fold {
                fr: 0,
                fc: 0,
                row_base: 0,
                col_base: 0,
                rows_used: 0,
                cols_used: 0,
                base_cycle: 0,
                duration: 0,
            },
            a: AddrRuns::new(),
            b: AddrRuns::new(),
            o_spill: AddrRuns::new(),
            o_writes: AddrRuns::new(),
        }
    }
}

/// Iterator over run-compressed per-fold demands. Created by
/// [`fold_demand_runs`].
#[derive(Debug)]
pub struct FoldDemandsRuns<'a, M: ?Sized> {
    dims: MappedDims,
    map: &'a M,
    plan: FoldPlan,
    /// Per-fold first-use dedup for the A stream, reused across folds.
    a_seen: IntervalSet,
    /// Scratch for raw `a_span` output before dedup.
    a_scratch: AddrRuns,
}

/// Enumerates each fold's demand as address runs — the run-compressed
/// counterpart of [`fold_demands`], feeding
/// [`DramModel::fold_runs`](scalesim_memory::DramModel::fold_runs).
///
/// ```
/// use scalesim_systolic::{fold_demand_runs, ArrayShape};
/// use scalesim_memory::{GemmAddressMap, RegionOffsets};
/// use scalesim_topology::{Dataflow, GemmShape};
///
/// let shape = GemmShape::new(8, 4, 8);
/// let dims = shape.project(Dataflow::OutputStationary);
/// let map = GemmAddressMap::from_shape(shape, RegionOffsets::default());
/// let folds: Vec<_> = fold_demand_runs(&dims, ArrayShape::square(4), &map).collect();
/// assert_eq!(folds.len(), 4);
/// assert_eq!(folds[0].a.element_count(), 4 * 4); // 4 rows x T=4 elements
/// assert_eq!(folds[0].a.run_count(), 1); // ... adjacent rows fuse to one run
/// ```
pub fn fold_demand_runs<'a, M: AddressMap + ?Sized>(
    dims: &MappedDims,
    array: ArrayShape,
    map: &'a M,
) -> FoldDemandsRuns<'a, M> {
    fold_demand_runs_in(dims, array, map, IntervalSet::new(), AddrRuns::new())
}

/// [`fold_demand_runs`] with caller-provided dedup scratch, so repeated
/// layer simulations on one worker reuse the grown storage. Reclaim it
/// with [`FoldDemandsRuns::into_scratch`] when the iterator is exhausted.
pub fn fold_demand_runs_in<'a, M: AddressMap + ?Sized>(
    dims: &MappedDims,
    array: ArrayShape,
    map: &'a M,
    a_seen: IntervalSet,
    a_scratch: AddrRuns,
) -> FoldDemandsRuns<'a, M> {
    FoldDemandsRuns {
        dims: *dims,
        map,
        plan: FoldPlan::new(dims, array),
        a_seen,
        a_scratch,
    }
}

impl<'a, M: AddressMap + ?Sized> FoldDemandsRuns<'a, M> {
    /// Produces the next fold's demand into caller-owned scratch instead
    /// of allocating a fresh [`FoldDemandRuns`]. Returns `false` when the
    /// plan is exhausted (leaving `out` cleared).
    ///
    /// This is the hot-path lending form of the [`Iterator`] impl: the
    /// simulator fold loop reuses one `FoldDemandRuns` for the whole
    /// layer, so steady-state demand generation performs no heap
    /// allocation.
    pub fn next_into(&mut self, out: &mut FoldDemandRuns) -> bool {
        out.clear();
        let Some(fold) = self.plan.next() else {
            return false;
        };
        fill_demand_runs_for_fold(
            &self.dims,
            &fold,
            self.map,
            &mut self.a_seen,
            &mut self.a_scratch,
            out,
        );
        true
    }

    /// Returns the dedup scratch for reuse by the next layer's iterator —
    /// the counterpart of [`fold_demand_runs_in`].
    pub fn into_scratch(self) -> (IntervalSet, AddrRuns) {
        (self.a_seen, self.a_scratch)
    }
}

impl<'a, M: AddressMap + ?Sized> Iterator for FoldDemandsRuns<'a, M> {
    type Item = FoldDemandRuns;

    fn next(&mut self) -> Option<FoldDemandRuns> {
        let mut out = FoldDemandRuns::default();
        self.next_into(&mut out).then_some(out)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.plan.size_hint()
    }
}

impl<'a, M: AddressMap + ?Sized> ExactSizeIterator for FoldDemandsRuns<'a, M> {}

/// Appends `A[m][k0..k0+len]` to `out`, deduplicated against `seen`
/// (first-use order): each maximal novel sub-range of each span run is
/// emitted in ascending `k` order — exactly the order the element-wise
/// `push_unique` loop produces.
fn push_a_dedup<M: AddressMap + ?Sized>(
    map: &M,
    m: u64,
    k0: u64,
    len: u64,
    seen: &mut IntervalSet,
    scratch: &mut AddrRuns,
    out: &mut AddrRuns,
) {
    scratch.clear();
    map.a_span(m, k0, len, scratch);
    for run in scratch.iter_runs() {
        // Fused probe: enumerate the novel sub-ranges and mark them seen
        // with one binary search over the dedup set.
        seen.insert_with_gaps(run.start, run.end(), |s, e| out.push(s, e - s));
    }
}

/// Fills `out` with the fold's demand. `out` must be cleared by the
/// caller; its stream buffers (and `a_seen` / `a_scratch`) are reused
/// across folds so the generator allocates nothing in steady state.
fn fill_demand_runs_for_fold<M: AddressMap + ?Sized>(
    dims: &MappedDims,
    fold: &Fold,
    map: &M,
    a_seen: &mut IntervalSet,
    a_scratch: &mut AddrRuns,
    out: &mut FoldDemandRuns,
) {
    let t = dims.temporal;
    let ru = fold.rows_used;
    let cu = fold.cols_used;
    out.fold = *fold;
    let a = &mut out.a;
    let b = &mut out.b;
    let o_spill = &mut out.o_spill;
    let o_writes = &mut out.o_writes;
    a_seen.clear();

    match dims.dataflow {
        Dataflow::OutputStationary => {
            // A: real addresses, row-major over (i, k) — one span per row.
            for i in 0..ru {
                push_a_dedup(map, fold.row_base + i, 0, t, a_seen, a_scratch, a);
            }
            // B: loop (j, k) over B[k][col_base+j]; label (k, n) -> n·T + k
            // makes each j a run of T and the whole fold one run.
            b.push((fold.col_base) * t, cu * t);
            // O: loop (i, j) over O[row_base+i][col_base+j]; label
            // (m, n) -> m·SC + n makes each row a run of cu.
            let sc = dims.spatial_cols;
            for i in 0..ru {
                o_writes.push((fold.row_base + i) * sc + fold.col_base, cu);
            }
        }
        Dataflow::WeightStationary => {
            let k_base = fold.row_base;
            let n_base = fold.col_base;
            // B: loop (i, j) over B[k_base+i][n_base+j]; label
            // (k, n) -> k·SC + n.
            let sc = dims.spatial_cols;
            for i in 0..ru {
                b.push((k_base + i) * sc + n_base, cu);
            }
            // A: real addresses, loop (mt, i) -> A[mt][k_base+i].
            for mt in 0..t {
                push_a_dedup(map, mt, k_base, ru, a_seen, a_scratch, a);
            }
            // O: loop (mt, j) over O[mt][n_base+j]; label (m, n) -> m·SC + n.
            let spill = fold.fr > 0;
            for mt in 0..t {
                let start = mt * sc + n_base;
                if spill {
                    o_spill.push(start, cu);
                }
                o_writes.push(start, cu);
            }
        }
        Dataflow::InputStationary => {
            let k_base = fold.row_base;
            let m_base = fold.col_base;
            // A: real addresses, loop (j, i) -> A[m_base+j][k_base+i].
            for j in 0..cu {
                push_a_dedup(map, m_base + j, k_base, ru, a_seen, a_scratch, a);
            }
            // B: loop (nt, i) over B[k_base+i][nt]; label (k, n) -> n·SR + k.
            let sr = dims.spatial_rows;
            for nt in 0..t {
                b.push(nt * sr + k_base, ru);
            }
            // O: loop (nt, j) over O[m_base+j][nt]; label (m, n) -> n·SC + m.
            let sc = dims.spatial_cols;
            let spill = fold.fr > 0;
            for nt in 0..t {
                let start = nt * sc + m_base;
                if spill {
                    o_spill.push(start, cu);
                }
                o_writes.push(start, cu);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate;
    use crate::trace::TraceSink;
    use scalesim_memory::{ConvAddressMap, GemmAddressMap, RegionOffsets};
    use scalesim_topology::{ConvLayer, GemmShape};
    use std::collections::HashSet;

    /// Unique addresses per stream: (a_reads, b_reads, o_reads, o_writes).
    type StreamSets = (HashSet<u64>, HashSet<u64>, HashSet<u64>, HashSet<u64>);

    /// A sink that collects the unique addresses per fold, for comparing
    /// against the demand iterator.
    #[derive(Default)]
    struct DemandCollector {
        current: Option<StreamSets>,
        folds: Vec<StreamSets>,
    }

    impl TraceSink for DemandCollector {
        fn fold_begin(&mut self, _fold: &Fold) {
            self.current = Some(Default::default());
        }
        fn read_a(&mut self, _cycle: u64, addr: u64) {
            self.current.as_mut().unwrap().0.insert(addr);
        }
        fn read_b(&mut self, _cycle: u64, addr: u64) {
            self.current.as_mut().unwrap().1.insert(addr);
        }
        fn read_o(&mut self, _cycle: u64, addr: u64) {
            self.current.as_mut().unwrap().2.insert(addr);
        }
        fn write_o(&mut self, _cycle: u64, addr: u64) {
            self.current.as_mut().unwrap().3.insert(addr);
        }
        fn fold_end(&mut self, _fold: &Fold) {
            self.folds.push(self.current.take().unwrap());
        }
    }

    fn check_demands_match_trace<M: AddressMap>(dims: &MappedDims, array: ArrayShape, map: &M) {
        let mut collector = DemandCollector::default();
        simulate(dims, array, map, &mut collector);
        let demands: Vec<FoldDemand> = fold_demands(dims, array, map).collect();
        assert_eq!(demands.len(), collector.folds.len());
        for (d, (ta, tb, tor, tow)) in demands.iter().zip(&collector.folds) {
            let da: HashSet<u64> = d.a.iter().copied().collect();
            let db: HashSet<u64> = d.b.iter().copied().collect();
            let dor: HashSet<u64> = d.o_spill.iter().copied().collect();
            let dow: HashSet<u64> = d.o_writes.iter().copied().collect();
            assert_eq!(&da, ta, "A demand mismatch in fold {:?}", d.fold);
            assert_eq!(&db, tb, "B demand mismatch in fold {:?}", d.fold);
            assert_eq!(&dor, tor, "spill mismatch in fold {:?}", d.fold);
            assert_eq!(&dow, tow, "write mismatch in fold {:?}", d.fold);
        }
    }

    #[test]
    fn demands_match_traces_for_gemm_all_dataflows() {
        let shape = GemmShape::new(10, 7, 9);
        for df in Dataflow::ALL {
            let dims = shape.project(df);
            let map = GemmAddressMap::from_shape(shape, RegionOffsets::default());
            check_demands_match_trace(&dims, ArrayShape::new(4, 4), &map);
        }
    }

    #[test]
    fn demands_match_traces_for_conv_all_dataflows() {
        let layer = ConvLayer::new("t", 8, 8, 3, 3, 2, 5, 1).unwrap();
        let map = ConvAddressMap::new(&layer, RegionOffsets::default());
        for df in Dataflow::ALL {
            let dims = layer.shape().project(df);
            check_demands_match_trace(&dims, ArrayShape::new(8, 4), &map);
        }
    }

    #[test]
    fn conv_overlap_dedups_ifmap_demand() {
        // Stride-1 3x3 conv: adjacent output pixels share 2/3 of their
        // window, so a fold's unique A demand is far below rows x T.
        let layer = ConvLayer::new("t", 10, 10, 3, 3, 1, 4, 1).unwrap();
        let map = ConvAddressMap::new(&layer, RegionOffsets::default());
        let dims = layer.shape().project(Dataflow::OutputStationary);
        let first = fold_demands(&dims, ArrayShape::new(16, 4), &map)
            .next()
            .unwrap();
        assert!(first.a.len() < (16 * dims.temporal) as usize / 2);
    }

    #[test]
    fn gemm_demand_sizes_are_exact() {
        let shape = GemmShape::new(8, 4, 8);
        let dims = shape.project(Dataflow::OutputStationary);
        let map = GemmAddressMap::from_shape(shape, RegionOffsets::default());
        for d in fold_demands(&dims, ArrayShape::square(4), &map) {
            assert_eq!(d.a.len() as u64, d.fold.rows_used * dims.temporal);
            assert_eq!(d.b.len() as u64, d.fold.cols_used * dims.temporal);
            assert_eq!(d.o_writes.len() as u64, d.fold.rows_used * d.fold.cols_used);
            assert!(d.o_spill.is_empty());
        }
    }

    /// Checks the run-compressed generator against the legacy enumeration:
    /// A element sequences must be identical; B/O streams must have equal
    /// per-fold sizes and be related by one layer-wide bijection per
    /// operand.
    fn check_runs_match_legacy<M: AddressMap>(dims: &MappedDims, array: ArrayShape, map: &M) {
        use std::collections::HashMap;
        let legacy: Vec<FoldDemand> = fold_demands(dims, array, map).collect();
        let runs: Vec<FoldDemandRuns> = fold_demand_runs(dims, array, map).collect();
        assert_eq!(legacy.len(), runs.len());
        let mut b_fwd: HashMap<u64, u64> = HashMap::new();
        let mut b_rev: HashMap<u64, u64> = HashMap::new();
        let mut o_fwd: HashMap<u64, u64> = HashMap::new();
        let mut o_rev: HashMap<u64, u64> = HashMap::new();
        let check_bijection = |fwd: &mut HashMap<u64, u64>,
                               rev: &mut HashMap<u64, u64>,
                               real: &[u64],
                               label: Vec<u64>| {
            assert_eq!(real.len(), label.len());
            for (&r, &l) in real.iter().zip(&label) {
                assert_eq!(*fwd.entry(r).or_insert(l), l, "label not a function");
                assert_eq!(*rev.entry(l).or_insert(r), r, "label not injective");
            }
        };
        for (d, dr) in legacy.iter().zip(&runs) {
            assert_eq!(d.fold, dr.fold);
            // A: exact element equality (real addresses, first-use order).
            assert_eq!(
                d.a,
                dr.a.iter_elements().collect::<Vec<u64>>(),
                "A stream diverged in fold {:?}",
                d.fold
            );
            check_bijection(&mut b_fwd, &mut b_rev, &d.b, dr.b.iter_elements().collect());
            check_bijection(
                &mut o_fwd,
                &mut o_rev,
                &d.o_spill,
                dr.o_spill.iter_elements().collect(),
            );
            check_bijection(
                &mut o_fwd,
                &mut o_rev,
                &d.o_writes,
                dr.o_writes.iter_elements().collect(),
            );
        }
    }

    #[test]
    fn run_demands_match_legacy_for_gemm_all_dataflows() {
        let shape = GemmShape::new(10, 7, 9);
        let map = GemmAddressMap::from_shape(shape, RegionOffsets::default());
        for df in Dataflow::ALL {
            let dims = shape.project(df);
            check_runs_match_legacy(&dims, ArrayShape::new(4, 4), &map);
        }
    }

    #[test]
    fn run_demands_match_legacy_for_conv_all_dataflows() {
        for stride in [1, 2] {
            let layer = ConvLayer::new("t", 8, 8, 3, 3, 2, 5, stride).unwrap();
            let map = ConvAddressMap::new(&layer, RegionOffsets::default());
            for df in Dataflow::ALL {
                let dims = layer.shape().project(df);
                check_runs_match_legacy(&dims, ArrayShape::new(8, 4), &map);
            }
        }
    }

    #[test]
    fn run_compression_is_effective_on_gemm() {
        // The whole point: far fewer runs than elements.
        let shape = GemmShape::new(64, 64, 64);
        let dims = shape.project(Dataflow::OutputStationary);
        let map = GemmAddressMap::from_shape(shape, RegionOffsets::default());
        for d in fold_demand_runs(&dims, ArrayShape::square(16), &map) {
            assert!(d.run_count() * 8 <= d.element_count());
        }
    }
}
