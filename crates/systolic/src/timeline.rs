//! Per-cycle array occupancy ("utilization over time").
//!
//! The trace methodology makes cycle-level utilization cheap to recover
//! (Sec. II-C: "The SRAM trace also depicts the number of rows and columns
//! that have valid mapping in each cycle"). For every dataflow, `PE(i, j)`
//! of a fold performs its `T` MACs over the contiguous window
//! `[base + off + i + j, base + off + i + j + T)`, where `off` is `0` for
//! OS and the fill latency `r'` for WS/IS. The number of PEs active at a
//! given cycle is therefore a difference of anti-diagonal counts, which
//! this module evaluates in closed form — no trace replay needed.

use std::collections::BTreeMap;

use scalesim_topology::{Dataflow, MappedDims};

use crate::fold::FoldPlan;
use crate::ArrayShape;

/// Distribution of active-PE counts over a layer's runtime.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OccupancyHistogram {
    /// `occupancy → number of cycles spent at that occupancy` (0 included).
    cycles_at: BTreeMap<u64, u64>,
    total_cycles: u64,
}

impl OccupancyHistogram {
    /// Cycles spent at exactly `occupancy` active PEs.
    pub fn cycles_at(&self, occupancy: u64) -> u64 {
        self.cycles_at.get(&occupancy).copied().unwrap_or(0)
    }

    /// The histogram's raw map, ascending by occupancy.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.cycles_at.iter().map(|(&occ, &cyc)| (occ, cyc))
    }

    /// Total cycles covered (the layer's stall-free runtime).
    pub fn total_cycles(&self) -> u64 {
        self.total_cycles
    }

    /// Highest simultaneous occupancy.
    pub fn peak(&self) -> u64 {
        self.cycles_at.keys().next_back().copied().unwrap_or(0)
    }

    /// Total PE-activity (`Σ occupancy · cycles`) — equals the layer's MAC
    /// count by construction.
    pub fn total_activity(&self) -> u64 {
        self.cycles_at.iter().map(|(&occ, &cyc)| occ * cyc).sum()
    }

    /// Mean occupancy over the runtime.
    pub fn mean(&self) -> f64 {
        if self.total_cycles == 0 {
            0.0
        } else {
            self.total_activity() as f64 / self.total_cycles as f64
        }
    }

    fn add(&mut self, occupancy: u64, cycles: u64) {
        if cycles > 0 {
            *self.cycles_at.entry(occupancy).or_insert(0) += cycles;
            self.total_cycles += cycles;
        }
    }
}

/// Number of `(i, j)` pairs with `0 ≤ i < rows`, `0 ≤ j < cols` and
/// `i + j ≤ s` — the cumulative anti-diagonal count of the wavefront.
fn antidiagonal_cum(rows: u64, cols: u64, s: i64) -> u64 {
    if s < 0 {
        return 0;
    }
    let s = s as u64;
    if s >= rows + cols - 2 {
        return rows * cols;
    }
    // Count pairs with i + j <= s via inclusion-exclusion on the
    // unconstrained triangle minus the parts exceeding each dimension.
    let tri = |n: u64| n * (n + 1) / 2;
    let total = tri(s + 1);
    let over_i = if s >= rows { tri(s + 1 - rows) } else { 0 };
    let over_j = if s >= cols { tri(s + 1 - cols) } else { 0 };
    let over_both = if s + 1 > rows + cols {
        tri(s + 1 - rows - cols)
    } else {
        0
    };
    total - over_i - over_j + over_both
}

/// Computes the occupancy histogram of `dims` on `array` across all folds.
///
/// Runs in `O(Σ_folds (r' + c'))` — it walks wavefront diagonals, not
/// cycles, so even month-long simulated runtimes finish instantly.
///
/// ```
/// use scalesim_systolic::{occupancy_histogram, ArrayShape};
/// use scalesim_topology::{Dataflow, GemmShape};
///
/// let dims = GemmShape::new(4, 16, 4).project(Dataflow::OutputStationary);
/// let hist = occupancy_histogram(&dims, ArrayShape::square(4));
/// assert_eq!(hist.total_activity(), 4 * 16 * 4); // every MAC accounted
/// assert_eq!(hist.peak(), 16);                   // full array at steady state
/// ```
pub fn occupancy_histogram(dims: &MappedDims, array: ArrayShape) -> OccupancyHistogram {
    let t = dims.temporal as i64;
    let mut hist = OccupancyHistogram::default();
    for fold in FoldPlan::new(dims, array) {
        let ru = fold.rows_used;
        let cu = fold.cols_used;
        let off = match dims.dataflow {
            Dataflow::OutputStationary => 0,
            // WS/IS spend r' fill cycles before the first MAC.
            Dataflow::WeightStationary | Dataflow::InputStationary => ru,
        } as i64;
        // Active PEs at local cycle x: A(x - off) - A(x - off - t), where A
        // is the anti-diagonal cumulative count. The occupancy is constant
        // between wavefront events, which happen at most 2(ru + cu) times.
        let diag_max = (ru + cu - 2) as i64;
        let mut events: Vec<i64> = Vec::with_capacity(2 * (ru + cu) as usize + 2);
        for d in 0..=diag_max {
            events.push(off + d); // wavefront head reaches diagonal d
            events.push(off + d + t); // wavefront tail leaves diagonal d
        }
        events.push(0);
        events.push(fold.duration as i64);
        events.sort_unstable();
        events.dedup();
        let occ_at = |x: i64| -> u64 {
            antidiagonal_cum(ru, cu, x - off) - antidiagonal_cum(ru, cu, x - off - t)
        };
        for pair in events.windows(2) {
            let (start, end) = (pair[0].max(0), pair[1].min(fold.duration as i64));
            if start >= end {
                continue;
            }
            hist.add(occ_at(start), (end - start) as u64);
        }
        // Drain/fill segments beyond the last event (if any) are idle.
        let last = events
            .last()
            .copied()
            .unwrap_or(0)
            .min(fold.duration as i64);
        if last < fold.duration as i64 {
            hist.add(0, (fold.duration as i64 - last) as u64);
        }
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use scalesim_topology::GemmShape;

    fn brute_force(dims: &MappedDims, array: ArrayShape) -> OccupancyHistogram {
        // Enumerate every PE's activity window per fold, per cycle.
        let t = dims.temporal;
        let mut hist = OccupancyHistogram::default();
        for fold in FoldPlan::new(dims, array) {
            let off = match dims.dataflow {
                Dataflow::OutputStationary => 0,
                _ => fold.rows_used,
            };
            let mut per_cycle = vec![0u64; fold.duration as usize];
            for i in 0..fold.rows_used {
                for j in 0..fold.cols_used {
                    for k in 0..t {
                        let cycle = (off + i + j + k) as usize;
                        if cycle < per_cycle.len() {
                            per_cycle[cycle] += 1;
                        }
                    }
                }
            }
            for occ in per_cycle {
                hist.add(occ, 1);
            }
        }
        hist
    }

    #[test]
    fn matches_brute_force_all_dataflows() {
        for df in Dataflow::ALL {
            for (m, k, n, r, c) in [
                (4u64, 16u64, 4u64, 4u64, 4u64),
                (10, 3, 7, 4, 4),
                (5, 9, 5, 8, 2),
            ] {
                let dims = GemmShape::new(m, k, n).project(df);
                let array = ArrayShape::new(r, c);
                let fast = occupancy_histogram(&dims, array);
                let brute = brute_force(&dims, array);
                assert_eq!(fast, brute, "{df:?} {m}x{k}x{n} on {r}x{c}");
            }
        }
    }

    #[test]
    fn activity_equals_macs_and_horizon_matches() {
        let dims = GemmShape::new(33, 12, 29).project(Dataflow::WeightStationary);
        let array = ArrayShape::new(8, 8);
        let hist = occupancy_histogram(&dims, array);
        assert_eq!(hist.total_activity(), dims.macs());
        let report = crate::analyze(&dims, array);
        assert_eq!(hist.total_cycles(), report.total_cycles);
        assert!((hist.mean() / (array.macs() as f64) - report.compute_utilization).abs() < 1e-12);
    }

    #[test]
    fn peak_occupancy_reaches_full_tile_when_temporal_is_long() {
        // T >= ru + cu - 1 guarantees a full-array steady state.
        let dims = GemmShape::new(8, 64, 8).project(Dataflow::OutputStationary);
        let hist = occupancy_histogram(&dims, ArrayShape::square(8));
        assert_eq!(hist.peak(), 64);
        assert!(hist.cycles_at(64) > 0);
    }

    #[test]
    fn short_temporal_never_fills_the_array() {
        // T = 1: the wavefront is a single moving anti-diagonal.
        let dims = GemmShape::new(8, 1, 8).project(Dataflow::OutputStationary);
        let hist = occupancy_histogram(&dims, ArrayShape::square(8));
        assert_eq!(hist.peak(), 8); // longest anti-diagonal of an 8x8 grid
    }

    #[test]
    fn antidiagonal_cum_basics() {
        assert_eq!(antidiagonal_cum(3, 3, -1), 0);
        assert_eq!(antidiagonal_cum(3, 3, 0), 1);
        assert_eq!(antidiagonal_cum(3, 3, 1), 3);
        assert_eq!(antidiagonal_cum(3, 3, 2), 6);
        assert_eq!(antidiagonal_cum(3, 3, 3), 8);
        assert_eq!(antidiagonal_cum(3, 3, 4), 9);
        assert_eq!(antidiagonal_cum(3, 3, 100), 9);
        assert_eq!(antidiagonal_cum(1, 5, 2), 3);
    }
}
