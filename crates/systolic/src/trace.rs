//! Trace events and sinks.
//!
//! The trace engines report every SRAM access they generate — cycle plus
//! element address — through a [`TraceSink`]. This is the streaming
//! equivalent of the CSV traces the original tool writes: instead of
//! materializing hundreds of megabytes of trace text, consumers aggregate on
//! the fly. A [`CsvTraceSink`] is provided for compatibility with the
//! original output format (and for debugging small runs).
//!
//! ## Event ordering contract
//!
//! Events are grouped by fold: every event of fold *f* is emitted between
//! `fold_begin(f)` and `fold_end(f)`, and folds arrive in execution order.
//! *Within* a fold, events are emitted stream-major (per operand row /
//! column), **not** sorted by cycle. Sinks that need cycle order (like the
//! CSV writer) buffer one fold and sort; counting sinks do not care.

use std::io::{self, Write};

use serde::{Deserialize, Serialize};

use crate::fold::Fold;

/// Receives the cycle-accurate SRAM access stream from a trace engine.
///
/// All methods have no-op defaults except the four access callbacks, so
/// purpose-built sinks implement only what they consume. `read_a` carries
/// IFMAP-operand reads, `read_b` filter-operand reads, `read_o` partial-sum
/// re-reads (WS/IS contraction folding) and `write_o` output writes.
pub trait TraceSink {
    /// A new fold begins.
    fn fold_begin(&mut self, fold: &Fold) {
        let _ = fold;
    }

    /// Operand-A (IFMAP) SRAM read at `cycle`.
    fn read_a(&mut self, cycle: u64, addr: u64);

    /// Operand-B (filter) SRAM read at `cycle`.
    fn read_b(&mut self, cycle: u64, addr: u64);

    /// Partial-sum SRAM read at `cycle` (accumulation across folds).
    fn read_o(&mut self, cycle: u64, addr: u64) {
        let _ = (cycle, addr);
    }

    /// Output SRAM write at `cycle`.
    fn write_o(&mut self, cycle: u64, addr: u64);

    /// The current fold is complete.
    fn fold_end(&mut self, fold: &Fold) {
        let _ = fold;
    }
}

/// A sink that discards every event — for pure timing runs.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn read_a(&mut self, _cycle: u64, _addr: u64) {}
    fn read_b(&mut self, _cycle: u64, _addr: u64) {}
    fn write_o(&mut self, _cycle: u64, _addr: u64) {}
}

/// Counts of SRAM accesses by stream.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SramCounts {
    /// Operand-A (IFMAP) reads.
    pub a_reads: u64,
    /// Operand-B (filter) reads.
    pub b_reads: u64,
    /// Partial-sum re-reads.
    pub o_reads: u64,
    /// Output writes.
    pub o_writes: u64,
}

impl SramCounts {
    /// Total SRAM accesses (reads + writes) — the energy model's input.
    pub fn total(&self) -> u64 {
        self.a_reads + self.b_reads + self.o_reads + self.o_writes
    }
}

/// A sink that accumulates access counts and the trace horizon.
#[derive(Debug, Clone, Default)]
pub struct CountingSink {
    counts: SramCounts,
    last_cycle: u64,
    folds_seen: u64,
}

impl CountingSink {
    /// Creates a fresh counting sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// The accumulated access counts.
    pub fn counts(&self) -> SramCounts {
        self.counts
    }

    /// The largest cycle stamp observed.
    pub fn last_cycle(&self) -> u64 {
        self.last_cycle
    }

    /// Number of folds observed.
    pub fn folds_seen(&self) -> u64 {
        self.folds_seen
    }

    fn stamp(&mut self, cycle: u64) {
        if cycle > self.last_cycle {
            self.last_cycle = cycle;
        }
    }
}

impl TraceSink for CountingSink {
    fn read_a(&mut self, cycle: u64, _addr: u64) {
        self.counts.a_reads += 1;
        self.stamp(cycle);
    }

    fn read_b(&mut self, cycle: u64, _addr: u64) {
        self.counts.b_reads += 1;
        self.stamp(cycle);
    }

    fn read_o(&mut self, cycle: u64, _addr: u64) {
        self.counts.o_reads += 1;
        self.stamp(cycle);
    }

    fn write_o(&mut self, cycle: u64, _addr: u64) {
        self.counts.o_writes += 1;
        self.stamp(cycle);
    }

    fn fold_end(&mut self, _fold: &Fold) {
        self.folds_seen += 1;
    }
}

/// Fans events out to two sinks.
#[derive(Debug, Default)]
pub struct TeeSink<A, B> {
    /// First receiver.
    pub first: A,
    /// Second receiver.
    pub second: B,
}

impl<A, B> TeeSink<A, B> {
    /// Combines two sinks.
    pub fn new(first: A, second: B) -> Self {
        TeeSink { first, second }
    }
}

impl<A: TraceSink, B: TraceSink> TraceSink for TeeSink<A, B> {
    fn fold_begin(&mut self, fold: &Fold) {
        self.first.fold_begin(fold);
        self.second.fold_begin(fold);
    }

    fn read_a(&mut self, cycle: u64, addr: u64) {
        self.first.read_a(cycle, addr);
        self.second.read_a(cycle, addr);
    }

    fn read_b(&mut self, cycle: u64, addr: u64) {
        self.first.read_b(cycle, addr);
        self.second.read_b(cycle, addr);
    }

    fn read_o(&mut self, cycle: u64, addr: u64) {
        self.first.read_o(cycle, addr);
        self.second.read_o(cycle, addr);
    }

    fn write_o(&mut self, cycle: u64, addr: u64) {
        self.first.write_o(cycle, addr);
        self.second.write_o(cycle, addr);
    }

    fn fold_end(&mut self, fold: &Fold) {
        self.first.fold_end(fold);
        self.second.fold_end(fold);
    }
}

/// Writes SCALE-Sim-style CSV traces: one row per cycle,
/// `cycle, addr, addr, …`, in three streams (SRAM reads for IFMAP and
/// filter, SRAM writes for OFMAP; partial-sum re-reads go to the read
/// stream of the OFMAP file prefixed by a `r` marker column).
///
/// Events are buffered per fold in flat vectors and flushed with one
/// stable sort on `fold_end`, restoring the cycle order the original
/// tool's files have. (A flat sort-once buffer replaces an earlier
/// per-event `BTreeMap`: same output bytes — stable sort keeps the
/// within-cycle emission order — without per-event tree rebalancing.)
#[derive(Debug)]
pub struct CsvTraceSink<W: Write> {
    reads: W,
    writes: W,
    /// `(cycle, stream, addr)`: stream 0 = operand A, stream 1 = operand B
    /// and partial-sum re-reads (which share the B half of a row).
    read_events: Vec<(u64, u8, u64)>,
    write_events: Vec<(u64, u64)>,
    error: Option<io::Error>,
}

impl<W: Write> CsvTraceSink<W> {
    /// Creates a CSV sink writing read traffic to `reads` and write traffic
    /// to `writes`. Pass `&mut f` for file writers (generic `W: Write` is
    /// implemented for `&mut W`).
    pub fn new(reads: W, writes: W) -> Self {
        CsvTraceSink {
            reads,
            writes,
            read_events: Vec::new(),
            write_events: Vec::new(),
            error: None,
        }
    }

    /// Finishes the trace, returning the first I/O error encountered (the
    /// sink callbacks themselves are infallible by design — C-DTOR-FAIL).
    pub fn finish(mut self) -> io::Result<(W, W)> {
        self.flush_rows();
        match self.error.take() {
            Some(e) => Err(e),
            None => Ok((self.reads, self.writes)),
        }
    }

    fn flush_rows(&mut self) {
        if self.error.is_some() {
            self.read_events.clear();
            self.write_events.clear();
            return;
        }
        // Stable sorts: rows come out in cycle order with the A addresses
        // before the B/partial-sum addresses, each in emission order —
        // byte-identical to grouping into per-cycle (a, b) vectors.
        self.read_events
            .sort_by_key(|&(cycle, stream, _)| (cycle, stream));
        self.write_events.sort_by_key(|&(cycle, _)| cycle);
        let mut row = String::new();
        let mut read_events = std::mem::take(&mut self.read_events);
        for group in read_events.chunk_by(|a, b| a.0 == b.0) {
            row.clear();
            row.push_str(&format!("{}", group[0].0));
            for &(_, _, addr) in group {
                row.push_str(&format!(",{addr}"));
            }
            row.push('\n');
            if let Err(e) = self.reads.write_all(row.as_bytes()) {
                self.error = Some(e);
                self.write_events.clear();
                return;
            }
        }
        read_events.clear();
        self.read_events = read_events;
        let mut write_events = std::mem::take(&mut self.write_events);
        for group in write_events.chunk_by(|a, b| a.0 == b.0) {
            row.clear();
            row.push_str(&format!("{}", group[0].0));
            for &(_, addr) in group {
                row.push_str(&format!(",{addr}"));
            }
            row.push('\n');
            if let Err(e) = self.writes.write_all(row.as_bytes()) {
                self.error = Some(e);
                return;
            }
        }
        write_events.clear();
        self.write_events = write_events;
    }
}

impl<W: Write> TraceSink for CsvTraceSink<W> {
    fn read_a(&mut self, cycle: u64, addr: u64) {
        self.read_events.push((cycle, 0, addr));
    }

    fn read_b(&mut self, cycle: u64, addr: u64) {
        self.read_events.push((cycle, 1, addr));
    }

    fn read_o(&mut self, cycle: u64, addr: u64) {
        // Partial-sum re-reads appear in the read trace alongside operands.
        self.read_events.push((cycle, 1, addr));
    }

    fn write_o(&mut self, cycle: u64, addr: u64) {
        self.write_events.push((cycle, addr));
    }

    fn fold_end(&mut self, _fold: &Fold) {
        self.flush_rows();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fold() -> Fold {
        Fold {
            fr: 0,
            fc: 0,
            row_base: 0,
            col_base: 0,
            rows_used: 1,
            cols_used: 1,
            base_cycle: 0,
            duration: 1,
        }
    }

    #[test]
    fn counting_sink_tracks_counts_and_horizon() {
        let mut sink = CountingSink::new();
        sink.fold_begin(&fold());
        sink.read_a(5, 1);
        sink.read_b(3, 2);
        sink.read_o(7, 3);
        sink.write_o(9, 4);
        sink.fold_end(&fold());
        assert_eq!(
            sink.counts(),
            SramCounts {
                a_reads: 1,
                b_reads: 1,
                o_reads: 1,
                o_writes: 1
            }
        );
        assert_eq!(sink.counts().total(), 4);
        assert_eq!(sink.last_cycle(), 9);
        assert_eq!(sink.folds_seen(), 1);
    }

    #[test]
    fn tee_feeds_both_sinks() {
        let mut tee = TeeSink::new(CountingSink::new(), CountingSink::new());
        tee.read_a(0, 0);
        tee.write_o(1, 1);
        assert_eq!(tee.first.counts().total(), 2);
        assert_eq!(tee.second.counts().total(), 2);
    }

    #[test]
    fn csv_sink_sorts_within_fold_and_formats_rows() {
        let mut sink = CsvTraceSink::new(Vec::new(), Vec::new());
        sink.fold_begin(&fold());
        // Emitted out of cycle order on purpose.
        sink.read_a(2, 20);
        sink.read_a(1, 10);
        sink.read_b(1, 11);
        sink.write_o(3, 30);
        sink.fold_end(&fold());
        let (reads, writes) = sink.finish().unwrap();
        assert_eq!(String::from_utf8(reads).unwrap(), "1,10,11\n2,20\n");
        assert_eq!(String::from_utf8(writes).unwrap(), "3,30\n");
    }

    #[test]
    fn csv_sink_interleaves_streams_in_stable_order() {
        let mut sink = CsvTraceSink::new(Vec::new(), Vec::new());
        sink.fold_begin(&fold());
        // Same cycle across streams: A addresses first, then B and
        // partial-sum re-reads in emission order.
        sink.read_b(4, 40);
        sink.read_o(4, 41);
        sink.read_a(4, 42);
        sink.read_a(4, 43);
        sink.write_o(4, 90);
        sink.write_o(4, 91);
        sink.fold_end(&fold());
        // A second fold flushes separately (rows append after).
        sink.fold_begin(&fold());
        sink.read_a(2, 20);
        sink.fold_end(&fold());
        let (reads, writes) = sink.finish().unwrap();
        assert_eq!(String::from_utf8(reads).unwrap(), "4,42,43,40,41\n2,20\n");
        assert_eq!(String::from_utf8(writes).unwrap(), "4,90,91\n");
    }

    #[test]
    fn csv_sink_reports_io_errors_on_finish() {
        struct Failing;
        impl Write for Failing {
            fn write(&mut self, _buf: &[u8]) -> io::Result<usize> {
                Err(io::Error::other("nope"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut sink = CsvTraceSink::new(Failing, Failing);
        sink.read_a(0, 0);
        sink.fold_end(&fold());
        assert!(sink.finish().is_err());
    }

    #[test]
    fn null_sink_is_a_no_op() {
        let mut sink = NullSink;
        sink.read_a(0, 0);
        sink.read_b(0, 0);
        sink.read_o(0, 0);
        sink.write_o(0, 0);
    }
}
