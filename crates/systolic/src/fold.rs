//! Folding: tiling a workload onto a finite array (Section III-B2).
//!
//! When `S_R × S_C` exceeds the physical `R × C` array, the computation is
//! sliced into *folds* along both spatial dimensions (Eq. 2 of the paper:
//! `F_R = ⌈S_R / R⌉`, `F_C = ⌈S_C / C⌉`). Folds execute serially; each fold
//! takes `2r′ + c′ + T − 2` cycles (Eq. 3) where `r′ × c′` is the tile
//! actually occupied.

use serde::{Deserialize, Serialize};

use scalesim_topology::MappedDims;

use crate::ArrayShape;

/// One fold: a tile of the workload mapped onto the array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Fold {
    /// Fold index along the spatial-row dimension (`0..fold_rows`).
    pub fr: u64,
    /// Fold index along the spatial-column dimension (`0..fold_cols`).
    pub fc: u64,
    /// First spatial-row coordinate covered (`fr · R`).
    pub row_base: u64,
    /// First spatial-column coordinate covered (`fc · C`).
    pub col_base: u64,
    /// Rows of the array occupied by this fold (`r′ ≤ R`).
    pub rows_used: u64,
    /// Columns of the array occupied by this fold (`c′ ≤ C`).
    pub cols_used: u64,
    /// Cycle at which this fold starts.
    pub base_cycle: u64,
    /// Compute duration: `2r′ + c′ + T − 2` (Eq. 3).
    pub duration: u64,
}

impl Fold {
    /// MAC operations performed by this fold (`r′ · c′ · T`).
    pub fn macs(&self, temporal: u64) -> u64 {
        self.rows_used * self.cols_used * temporal
    }
}

/// The serialized schedule of folds for a workload on an array.
///
/// Iterates row-major (all column folds of row-fold 0, then row-fold 1, …),
/// matching the original tool's loop order.
///
/// ```
/// use scalesim_systolic::{ArrayShape, FoldPlan};
/// use scalesim_topology::{Dataflow, GemmShape};
///
/// let dims = GemmShape::new(10, 4, 6).project(Dataflow::OutputStationary);
/// let plan = FoldPlan::new(&dims, ArrayShape::new(4, 4));
/// assert_eq!(plan.fold_rows(), 3); // ceil(10/4)
/// assert_eq!(plan.fold_cols(), 2); // ceil(6/4)
/// // Eq. 4: full folds take 2*4 + 4 + 4 - 2 = 14 cycles.
/// assert_eq!(plan.clone().next().unwrap().duration, 14);
/// ```
#[derive(Debug, Clone)]
pub struct FoldPlan {
    dims: MappedDims,
    array: ArrayShape,
    fold_rows: u64,
    fold_cols: u64,
    next_index: u64,
    cycle: u64,
}

impl FoldPlan {
    /// Plans the folds of `dims` over `array`.
    pub fn new(dims: &MappedDims, array: ArrayShape) -> Self {
        let fold_rows = dims.spatial_rows.div_ceil(array.rows());
        let fold_cols = dims.spatial_cols.div_ceil(array.cols());
        FoldPlan {
            dims: *dims,
            array,
            fold_rows,
            fold_cols,
            next_index: 0,
            cycle: 0,
        }
    }

    /// Number of folds along the spatial-row dimension (`F_R`).
    pub fn fold_rows(&self) -> u64 {
        self.fold_rows
    }

    /// Number of folds along the spatial-column dimension (`F_C`).
    pub fn fold_cols(&self) -> u64 {
        self.fold_cols
    }

    /// Total number of folds (`F_R · F_C`).
    pub fn fold_count(&self) -> u64 {
        self.fold_rows * self.fold_cols
    }

    /// The four distinct fold shapes of the plan with their multiplicities:
    /// interior folds are all `R × C`; only the last row/column of folds
    /// can be smaller. Lets every aggregate be computed in O(1) instead of
    /// iterating `F_R · F_C` folds.
    pub fn shape_classes(&self) -> [(u64, u64, u64); 4] {
        let r = self.array.rows();
        let c = self.array.cols();
        let r_edge = self.dims.spatial_rows - (self.fold_rows - 1) * r;
        let c_edge = self.dims.spatial_cols - (self.fold_cols - 1) * c;
        let full_r = self.fold_rows - 1;
        let full_c = self.fold_cols - 1;
        [
            (full_r * full_c, r, c),
            (full_r, r, c_edge),
            (full_c, r_edge, c),
            (1, r_edge, c_edge),
        ]
    }

    /// Total runtime of the whole plan in cycles — the sum of Eq. 3 over all
    /// folds, which equals Eq. 4 when every fold is full.
    pub fn total_cycles(&self) -> u64 {
        self.shape_classes()
            .iter()
            .map(|&(count, ru, cu)| count * fold_duration(ru, cu, self.dims.temporal))
            .sum()
    }

    /// Sum over folds of occupied PEs, as a fraction of `R·C·folds` — the
    /// paper's *array (mapping) utilization* (Fig. 9b-c).
    pub fn mapping_utilization(&self) -> f64 {
        let occupied: u128 = self
            .shape_classes()
            .iter()
            .map(|&(count, ru, cu)| (count as u128) * (ru as u128) * (cu as u128))
            .sum();
        let denom = (self.array.macs() as u128) * (self.fold_count() as u128);
        occupied as f64 / denom as f64
    }
}

impl Iterator for FoldPlan {
    type Item = Fold;

    fn next(&mut self) -> Option<Fold> {
        if self.next_index >= self.fold_count() {
            return None;
        }
        let fr = self.next_index / self.fold_cols;
        let fc = self.next_index % self.fold_cols;
        let rows_used = tile_extent(self.dims.spatial_rows, self.array.rows(), fr);
        let cols_used = tile_extent(self.dims.spatial_cols, self.array.cols(), fc);
        let duration = fold_duration(rows_used, cols_used, self.dims.temporal);
        let fold = Fold {
            fr,
            fc,
            row_base: fr * self.array.rows(),
            col_base: fc * self.array.cols(),
            rows_used,
            cols_used,
            base_cycle: self.cycle,
            duration,
        };
        self.cycle += duration;
        self.next_index += 1;
        Some(fold)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = (self.fold_count() - self.next_index) as usize;
        (left, Some(left))
    }
}

impl ExactSizeIterator for FoldPlan {}

/// Extent of tile `index` when cutting `total` into `chunk`-sized tiles.
fn tile_extent(total: u64, chunk: u64, index: u64) -> u64 {
    let start = index * chunk;
    chunk.min(total - start)
}

/// Eq. 3 of the paper: the stall-free duration of one fold.
pub fn fold_duration(rows_used: u64, cols_used: u64, temporal: u64) -> u64 {
    2 * rows_used + cols_used + temporal - 2
}

#[cfg(test)]
mod tests {
    use super::*;
    use scalesim_topology::{Dataflow, GemmShape};

    fn dims(m: u64, k: u64, n: u64) -> MappedDims {
        GemmShape::new(m, k, n).project(Dataflow::OutputStationary)
    }

    #[test]
    fn exact_fit_is_one_fold() {
        let plan = FoldPlan::new(&dims(4, 7, 4), ArrayShape::square(4));
        assert_eq!(plan.fold_count(), 1);
        assert_eq!(plan.total_cycles(), 2 * 4 + 4 + 7 - 2);
    }

    #[test]
    fn ragged_folds_use_partial_tiles() {
        let plan = FoldPlan::new(&dims(10, 3, 6), ArrayShape::new(4, 4));
        let folds: Vec<Fold> = plan.collect();
        assert_eq!(folds.len(), 6);
        // Last row-fold only uses 2 rows; last column-folds use 2 columns.
        let last = folds.last().unwrap();
        assert_eq!(last.rows_used, 2);
        assert_eq!(last.cols_used, 2);
        assert_eq!(last.duration, 2 * 2 + 2 + 3 - 2);
    }

    #[test]
    fn base_cycles_are_contiguous() {
        let plan = FoldPlan::new(&dims(9, 5, 9), ArrayShape::new(4, 4));
        let mut expected_base = 0;
        for fold in plan.clone() {
            assert_eq!(fold.base_cycle, expected_base);
            expected_base += fold.duration;
        }
        assert_eq!(plan.total_cycles(), expected_base);
    }

    #[test]
    fn total_cycles_matches_eq4_for_divisible_workloads() {
        // Eq. 4: (2R + C + T - 2) * ceil(SR/R) * ceil(SC/C).
        let d = dims(16, 5, 12);
        let array = ArrayShape::new(4, 4);
        let plan = FoldPlan::new(&d, array);
        let eq4 = (2 * 4 + 4 + 5 - 2) * (16 / 4) * (12 / 4);
        assert_eq!(plan.total_cycles(), eq4);
    }

    #[test]
    fn mapping_utilization_full_when_divisible() {
        let plan = FoldPlan::new(&dims(8, 3, 8), ArrayShape::new(4, 4));
        assert_eq!(plan.mapping_utilization(), 1.0);
    }

    #[test]
    fn mapping_utilization_drops_for_ragged_tiles() {
        let plan = FoldPlan::new(&dims(5, 3, 4), ArrayShape::new(4, 4));
        // Two folds: 4x4 full and 1x4 -> (16 + 4) / 32.
        assert_eq!(plan.mapping_utilization(), 20.0 / 32.0);
    }

    #[test]
    fn iterator_len_matches_fold_count() {
        let plan = FoldPlan::new(&dims(9, 2, 9), ArrayShape::new(4, 4));
        assert_eq!(plan.len(), plan.fold_count() as usize);
    }

    #[test]
    fn oversized_array_single_partial_fold() {
        let plan = FoldPlan::new(&dims(3, 2, 3), ArrayShape::square(8));
        let folds: Vec<Fold> = plan.collect();
        assert_eq!(folds.len(), 1);
        assert_eq!(folds[0].rows_used, 3);
        assert_eq!(folds[0].cols_used, 3);
        // Eq. 1 with the *used* extents: runtime 2*3 + 3 + 2 - 2.
        assert_eq!(folds[0].duration, 9);
    }
}
