#![warn(missing_docs)]

//! Cycle-accurate systolic-array simulation for `scale-sim-rs`.
//!
//! This crate is the compute side of SCALE-Sim (Section II of the paper):
//! given a workload projected onto array dimensions
//! ([`scalesim_topology::MappedDims`]) and a physical [`ArrayShape`], the
//! trace engines generate the exact per-cycle SRAM read/write address
//! streams the accelerator would issue for the Output-Stationary,
//! Weight-Stationary and Input-Stationary dataflows, assuming the PE array
//! never stalls (the tool's "inside-out" modeling approach of Sec. II-C).
//!
//! Three layers of fidelity are provided:
//!
//! * [`simulate`] — the vectorized trace engine: emits every SRAM access
//!   with its cycle stamp to a [`TraceSink`] and returns a
//!   [`ComputeReport`].
//! * [`fold_demands`] — the fold-granular demand stream (unique addresses
//!   per fold) that feeds the DRAM double-buffer model; orders of magnitude
//!   cheaper than full traces and provably consistent with them.
//! * [`pe_grid`] — a register-level golden model: a literal grid of MAC
//!   PEs with store-and-forward links, computing real values. This is the
//!   stand-in for the RTL implementation the paper validates against in
//!   Fig. 4; the test suite checks the trace engines cycle-for-cycle
//!   against it.
//!
//! # Example
//!
//! ```
//! use scalesim_systolic::{simulate, ArrayShape, CountingSink};
//! use scalesim_memory::{GemmAddressMap, RegionOffsets};
//! use scalesim_topology::{Dataflow, GemmShape};
//!
//! let shape = GemmShape::new(16, 8, 16);
//! let dims = shape.project(Dataflow::OutputStationary);
//! let map = GemmAddressMap::from_shape(shape, RegionOffsets::default());
//! let mut sink = CountingSink::new();
//! let report = simulate(&dims, ArrayShape::square(16), &map, &mut sink);
//! // One fold; Eq. 1 of the paper: 2*16 + 16 + 8 - 2 cycles.
//! assert_eq!(report.total_cycles, 54);
//! assert_eq!(sink.counts().o_writes, 16 * 16);
//! ```

mod array;
mod demand;
mod engine;
mod fold;
mod is_df;
mod os;
pub mod pe_grid;
mod timeline;
mod trace;
mod ws;

pub use crate::array::ArrayShape;
pub use crate::demand::{
    fold_demand_runs, fold_demand_runs_in, fold_demands, FoldDemand, FoldDemandRuns, FoldDemands,
    FoldDemandsRuns,
};
pub use crate::engine::{analyze, simulate, ComputeReport};
pub use crate::fold::{fold_duration, Fold, FoldPlan};
pub use crate::timeline::{occupancy_histogram, OccupancyHistogram};
pub use crate::trace::{CountingSink, CsvTraceSink, NullSink, SramCounts, TeeSink, TraceSink};

// Re-export the mapping types callers need alongside the engines.
pub use scalesim_topology::{Dataflow, MappedDims};
