//! Weight-Stationary trace generation (Fig. 3b / Fig. 6b of the paper).
//!
//! Filter weights are pre-filled into the array (one weight row per cycle,
//! shifting down — `r'` cycles, no skew). IFMAP elements then stream from
//! the left edge, skewed one cycle per row; each PE multiplies the passing
//! IFMAP value with its resident weight and forwards the partial sum down
//! its column, so one OFMAP value exits the bottom of each column per cycle
//! once the pipeline is full.
//!
//! Array rows carry the contraction (`W_conv`) dimension, columns carry
//! filters, and time carries OFMAP pixels (Table III). Folding along the
//! row dimension splits the contraction, so every fold beyond the first
//! accumulates into partial sums: the engine emits a partial-sum *read* for
//! each output it writes in those folds.

use scalesim_memory::AddressMap;
use scalesim_topology::MappedDims;

use crate::fold::FoldPlan;
use crate::trace::TraceSink;
use crate::ArrayShape;

/// Emits the full WS access trace for `dims` on `array`.
pub(crate) fn trace<M: AddressMap + ?Sized, S: TraceSink + ?Sized>(
    dims: &MappedDims,
    array: ArrayShape,
    map: &M,
    sink: &mut S,
) {
    let t = dims.temporal; // OFMAP pixels (GEMM m) unroll in time.
    for fold in FoldPlan::new(dims, array) {
        sink.fold_begin(&fold);
        let b = fold.base_cycle;
        let ru = fold.rows_used;
        let cu = fold.cols_used;
        let k_base = fold.row_base; // contraction (window) offset
        let n_base = fold.col_base; // filter offset

        // Weight fill: at cycle b+p the row of weights that must settle
        // deepest (row index r'-1-p after shifting) is read, one element per
        // column.
        for p in 0..ru {
            let k = k_base + (ru - 1 - p);
            for j in 0..cu {
                sink.read_b(b + p, map.b(k, n_base + j));
            }
        }

        // IFMAP stream: row i receives window element (k_base + i) of OFMAP
        // pixel mt at cycle b + r' + mt + i (skewed by row).
        for mt in 0..t {
            for i in 0..ru {
                sink.read_a(b + ru + mt + i, map.a(mt, k_base + i));
            }
        }

        // Outputs: the partial sum for (pixel mt, filter j) leaves the
        // bottom of column j at cycle b + 2r' + mt + j - 1. Row folds beyond
        // the first must first read the previous partial to accumulate.
        let spill = fold.fr > 0;
        for mt in 0..t {
            for j in 0..cu {
                let cycle = b + 2 * ru + mt + j - 1;
                let addr = map.o(mt, n_base + j);
                if spill {
                    sink.read_o(cycle, addr);
                }
                sink.write_o(cycle, addr);
            }
        }

        sink.fold_end(&fold);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fold::fold_duration;
    use crate::trace::CountingSink;
    use scalesim_memory::{GemmAddressMap, RegionOffsets};
    use scalesim_topology::{Dataflow, GemmShape};

    fn run(m: u64, k: u64, n: u64, rows: u64, cols: u64) -> CountingSink {
        let shape = GemmShape::new(m, k, n);
        let dims = shape.project(Dataflow::WeightStationary);
        let map = GemmAddressMap::from_shape(shape, RegionOffsets::default());
        let mut sink = CountingSink::new();
        trace(&dims, ArrayShape::new(rows, cols), &map, &mut sink);
        sink
    }

    #[test]
    fn single_fold_counts_and_horizon() {
        // m=5 pixels, k=4 window, n=4 filters on a 4x4 array: one fold,
        // S_R = k = 4, S_C = n = 4, T = m = 5.
        let sink = run(5, 4, 4, 4, 4);
        let c = sink.counts();
        assert_eq!(c.b_reads, 4 * 4); // whole weight tile once
        assert_eq!(c.a_reads, 4 * 5); // each pixel's window column
        assert_eq!(c.o_writes, 5 * 4);
        assert_eq!(c.o_reads, 0);
        assert_eq!(sink.last_cycle(), fold_duration(4, 4, 5) - 1);
    }

    #[test]
    fn contraction_folds_emit_partial_sum_reads() {
        // k=8 on 4 rows -> two row folds; second fold re-reads outputs.
        let sink = run(5, 8, 4, 4, 4);
        let c = sink.counts();
        assert_eq!(c.o_writes, 2 * 5 * 4);
        assert_eq!(c.o_reads, 5 * 4);
    }

    #[test]
    fn column_folds_restream_ifmap() {
        // n=8 on 4 columns -> two column folds, IFMAP streamed twice.
        let sink = run(5, 4, 8, 4, 4);
        let c = sink.counts();
        assert_eq!(c.a_reads, 2 * 4 * 5);
        assert_eq!(c.b_reads, 4 * 8);
        assert_eq!(c.o_reads, 0);
    }

    #[test]
    fn trace_horizon_equals_fold_plan_total() {
        let shape = GemmShape::new(6, 9, 7);
        let dims = shape.project(Dataflow::WeightStationary);
        let plan_total = FoldPlan::new(&dims, ArrayShape::new(4, 4)).total_cycles();
        let sink = run(6, 9, 7, 4, 4);
        assert_eq!(sink.last_cycle() + 1, plan_total);
    }

    #[test]
    fn single_row_array_degenerate_case() {
        let sink = run(3, 1, 2, 1, 4);
        // r'=1: fill takes 1 cycle, first output at cycle 2*1+0+0-1 = 1.
        assert_eq!(sink.counts().b_reads, 2);
        assert_eq!(sink.last_cycle(), fold_duration(1, 2, 3) - 1);
    }
}
