//! Output-Stationary trace generation (Fig. 3a / Fig. 6a of the paper).
//!
//! Each PE owns one OFMAP pixel: operand A rows stream from the left edge,
//! operand B columns from the top edge, both skewed one cycle per row/column
//! to honour the store-and-forward links. `PE(i, j)` receives its `k`-th
//! operand pair at cycle `base + i + j + k` and accumulates in place; after
//! `T` pairs the result is complete and columns drain through the bottom
//! edge, one element per cycle per column.

use scalesim_memory::AddressMap;
use scalesim_topology::MappedDims;

use crate::fold::FoldPlan;
use crate::trace::TraceSink;
use crate::ArrayShape;

/// Emits the full OS access trace for `dims` on `array`.
pub(crate) fn trace<M: AddressMap + ?Sized, S: TraceSink + ?Sized>(
    dims: &MappedDims,
    array: ArrayShape,
    map: &M,
    sink: &mut S,
) {
    let t = dims.temporal;
    for fold in FoldPlan::new(dims, array) {
        sink.fold_begin(&fold);
        let b = fold.base_cycle;

        // Operand A: row i streams its T elements, one per cycle, skewed by
        // the row index so the wavefront matches the store-and-forward grid.
        for i in 0..fold.rows_used {
            let m = fold.row_base + i;
            for k in 0..t {
                sink.read_a(b + i + k, map.a(m, k));
            }
        }

        // Operand B: column j streams filter j's T elements, skewed by j.
        for j in 0..fold.cols_used {
            let n = fold.col_base + j;
            for k in 0..t {
                sink.read_b(b + j + k, map.b(k, n));
            }
        }

        // Outputs: column j's last PE finishes at b + (r'-1) + j + (T-1);
        // the column then drains bottom-first, one element per cycle.
        for j in 0..fold.cols_used {
            let n = fold.col_base + j;
            let first_exit = b + fold.rows_used + j + t - 1;
            for s in 0..fold.rows_used {
                let m = fold.row_base + (fold.rows_used - 1 - s);
                sink.write_o(first_exit + s, map.o(m, n));
            }
        }

        sink.fold_end(&fold);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fold::fold_duration;
    use crate::trace::CountingSink;
    use scalesim_memory::{GemmAddressMap, RegionOffsets};
    use scalesim_topology::{Dataflow, GemmShape};

    fn run(m: u64, k: u64, n: u64, rows: u64, cols: u64) -> CountingSink {
        let shape = GemmShape::new(m, k, n);
        let dims = shape.project(Dataflow::OutputStationary);
        let map = GemmAddressMap::from_shape(shape, RegionOffsets::default());
        let mut sink = CountingSink::new();
        trace(&dims, ArrayShape::new(rows, cols), &map, &mut sink);
        sink
    }

    #[test]
    fn single_fold_counts_and_horizon() {
        let sink = run(4, 3, 4, 4, 4);
        let c = sink.counts();
        assert_eq!(c.a_reads, 4 * 3);
        assert_eq!(c.b_reads, 4 * 3);
        assert_eq!(c.o_writes, 16);
        assert_eq!(c.o_reads, 0);
        // Last event lands on the final cycle of Eq. 1: 2*4+4+3-2 = 13,
        // i.e. cycle index 12.
        assert_eq!(sink.last_cycle(), fold_duration(4, 4, 3) - 1);
    }

    #[test]
    fn folded_run_touches_every_coordinate_once() {
        let sink = run(10, 3, 6, 4, 4);
        let c = sink.counts();
        // Each A row is re-streamed once per column fold (2 here).
        assert_eq!(c.a_reads, 10 * 3 * 2);
        // Each B column re-streamed once per row fold (3 here).
        assert_eq!(c.b_reads, 6 * 3 * 3);
        assert_eq!(c.o_writes, 10 * 6);
        assert_eq!(sink.folds_seen(), 6);
    }

    #[test]
    fn trace_horizon_equals_fold_plan_total() {
        let shape = GemmShape::new(9, 5, 7);
        let dims = shape.project(Dataflow::OutputStationary);
        let plan_total = FoldPlan::new(&dims, ArrayShape::new(4, 4)).total_cycles();
        let sink = run(9, 5, 7, 4, 4);
        assert_eq!(sink.last_cycle() + 1, plan_total);
    }
}
