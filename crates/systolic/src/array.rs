//! The physical MAC array.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Shape of a systolic MAC array: `rows × cols` processing elements.
///
/// Corresponds to the `ArrayHeight` / `ArrayWidth` parameters of Table I.
///
/// ```
/// use scalesim_systolic::ArrayShape;
///
/// let tpu_like = ArrayShape::new(256, 256);
/// assert_eq!(tpu_like.macs(), 65_536);
/// assert_eq!(tpu_like.to_string(), "256x256");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ArrayShape {
    rows: u64,
    cols: u64,
}

impl ArrayShape {
    /// Creates an array shape.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(rows: u64, cols: u64) -> Self {
        assert!(rows > 0 && cols > 0, "array dimensions must be nonzero");
        ArrayShape { rows, cols }
    }

    /// A square `n × n` array.
    pub fn square(n: u64) -> Self {
        ArrayShape::new(n, n)
    }

    /// Number of PE rows (`R`).
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Number of PE columns (`C`).
    pub fn cols(&self) -> u64 {
        self.cols
    }

    /// Total MAC units (`R · C`).
    pub fn macs(&self) -> u64 {
        self.rows * self.cols
    }

    /// Aspect ratio `R / C` as a float (1.0 for square arrays).
    pub fn aspect_ratio(&self) -> f64 {
        self.rows as f64 / self.cols as f64
    }

    /// The transposed shape (`C × R`).
    pub fn transposed(&self) -> ArrayShape {
        ArrayShape {
            rows: self.cols,
            cols: self.rows,
        }
    }
}

impl fmt::Display for ArrayShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}", self.rows, self.cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_and_macs() {
        let a = ArrayShape::new(8, 32);
        assert_eq!(a.rows(), 8);
        assert_eq!(a.cols(), 32);
        assert_eq!(a.macs(), 256);
        assert_eq!(a.aspect_ratio(), 0.25);
    }

    #[test]
    fn square_and_transpose() {
        assert_eq!(ArrayShape::square(16), ArrayShape::new(16, 16));
        assert_eq!(ArrayShape::new(8, 32).transposed(), ArrayShape::new(32, 8));
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_rows_panics() {
        let _ = ArrayShape::new(0, 4);
    }

    #[test]
    fn display_format() {
        assert_eq!(ArrayShape::new(128, 64).to_string(), "128x64");
    }
}
