//! The unified simulation entry point and its report.

use serde::{Deserialize, Serialize};

use scalesim_memory::AddressMap;
use scalesim_topology::{Dataflow, MappedDims};

use crate::fold::FoldPlan;
use crate::trace::{SramCounts, TraceSink};
use crate::{is_df, os, ws, ArrayShape};

/// Summary of one layer's stall-free execution on a single array.
///
/// Produced by [`simulate`]. All SRAM counts are derived from the same fold
/// schedule that drives the trace engines, so they are exactly the counts a
/// [`crate::CountingSink`] would accumulate (the test suite asserts this).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ComputeReport {
    /// The projected workload that was simulated.
    pub dims: MappedDims,
    /// The physical array it ran on.
    pub array: ArrayShape,
    /// Total stall-free runtime in cycles (sum of Eq. 3 over all folds).
    pub total_cycles: u64,
    /// Number of folds executed.
    pub folds: u64,
    /// Useful multiply-accumulate operations (`S_R · S_C · T`).
    pub mac_ops: u64,
    /// SRAM access counts by stream.
    pub sram: SramCounts,
    /// Average fraction of PEs with work mapped, over folds (Fig. 9b-c).
    pub mapping_utilization: f64,
    /// MAC throughput utilization: `mac_ops / (R · C · total_cycles)`.
    pub compute_utilization: f64,
}

impl ComputeReport {
    /// SRAM accesses per useful MAC — a locality figure of merit.
    pub fn sram_accesses_per_mac(&self) -> f64 {
        self.sram.total() as f64 / self.mac_ops as f64
    }
}

/// Runs the cycle-accurate trace engine for `dims` on `array`, streaming
/// every SRAM access into `sink`, and returns the execution summary.
///
/// The engine assumes the array never stalls (SCALE-Sim's "inside-out"
/// model, Section II-C): SRAM always delivers operands on time. Whether the
/// memory system *can* deliver them is answered separately by the DRAM model
/// fed from [`crate::fold_demands`].
///
/// ```
/// use scalesim_systolic::{simulate, ArrayShape, NullSink};
/// use scalesim_memory::{GemmAddressMap, RegionOffsets};
/// use scalesim_topology::{Dataflow, GemmShape};
///
/// let shape = GemmShape::new(32, 16, 32);
/// let dims = shape.project(Dataflow::WeightStationary);
/// let map = GemmAddressMap::from_shape(shape, RegionOffsets::default());
/// let report = simulate(&dims, ArrayShape::square(16), &map, &mut NullSink);
/// assert_eq!(report.folds, 2);
/// assert_eq!(report.mac_ops, 32 * 16 * 32);
/// ```
pub fn simulate<M: AddressMap + ?Sized, S: TraceSink + ?Sized>(
    dims: &MappedDims,
    array: ArrayShape,
    map: &M,
    sink: &mut S,
) -> ComputeReport {
    // Trace generation is the expensive cycle-accurate path (unlike
    // `analyze`, which sweeps call in tight loops and stays uninstrumented).
    let _span = scalesim_telemetry::span!("systolic_trace", dataflow = dims.dataflow);
    match dims.dataflow {
        Dataflow::OutputStationary => os::trace(dims, array, map, sink),
        Dataflow::WeightStationary => ws::trace(dims, array, map, sink),
        Dataflow::InputStationary => is_df::trace(dims, array, map, sink),
    }
    let report = analyze(dims, array);
    scalesim_telemetry::global()
        .counter(
            "scalesim_trace_folds_total",
            "Folds emitted by the cycle-accurate trace engines.",
        )
        .add(report.folds);
    report
}

/// Computes the [`ComputeReport`] for `dims` on `array` without emitting
/// traces — the counts and cycles are closed-form over the fold schedule,
/// so this is cheap enough to call inside design-space sweeps.
///
/// ```
/// use scalesim_systolic::{analyze, ArrayShape};
/// use scalesim_topology::{Dataflow, GemmShape};
///
/// let dims = GemmShape::new(64, 16, 64).project(Dataflow::OutputStationary);
/// let report = analyze(&dims, ArrayShape::square(32));
/// assert_eq!(report.folds, 4);
/// ```
pub fn analyze(dims: &MappedDims, array: ArrayShape) -> ComputeReport {
    let plan = FoldPlan::new(dims, array);
    let t = dims.temporal;
    let mut sram = SramCounts::default();
    // O(1) aggregation: sum per fold-shape class instead of per fold.
    for (count, ru, cu) in plan.shape_classes() {
        match dims.dataflow {
            Dataflow::OutputStationary => {
                sram.a_reads += count * ru * t;
                sram.b_reads += count * cu * t;
                sram.o_writes += count * ru * cu;
            }
            Dataflow::WeightStationary => {
                sram.a_reads += count * ru * t;
                sram.b_reads += count * ru * cu;
                sram.o_writes += count * t * cu;
            }
            Dataflow::InputStationary => {
                sram.a_reads += count * ru * cu;
                sram.b_reads += count * ru * t;
                sram.o_writes += count * t * cu;
            }
        }
    }
    // WS/IS partial-sum re-reads: every fold with fr > 0 re-reads its
    // t x c' outputs; summed over the last F_R - 1 fold rows that is
    // t x S_C per fold row.
    if dims.dataflow != Dataflow::OutputStationary && plan.fold_rows() > 1 {
        sram.o_reads = (plan.fold_rows() - 1) * t * dims.spatial_cols;
    }
    let total_cycles = plan.total_cycles();
    let folds = plan.fold_count();
    let mac_ops = dims.macs();
    ComputeReport {
        dims: *dims,
        array,
        total_cycles,
        folds,
        mac_ops,
        sram,
        mapping_utilization: plan.mapping_utilization(),
        compute_utilization: mac_ops as f64 / (array.macs() * total_cycles) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::CountingSink;
    use scalesim_memory::{GemmAddressMap, RegionOffsets};
    use scalesim_topology::GemmShape;

    fn check_counts_match(m: u64, k: u64, n: u64, rows: u64, cols: u64, df: Dataflow) {
        let shape = GemmShape::new(m, k, n);
        let dims = shape.project(df);
        let map = GemmAddressMap::from_shape(shape, RegionOffsets::default());
        let mut sink = CountingSink::new();
        let report = simulate(&dims, ArrayShape::new(rows, cols), &map, &mut sink);
        assert_eq!(report.sram, sink.counts(), "{df:?} counts diverge");
        assert_eq!(
            report.total_cycles,
            sink.last_cycle() + 1,
            "{df:?} horizon diverges"
        );
        assert_eq!(report.folds, sink.folds_seen());
    }

    #[test]
    fn analytic_counts_match_emitted_traces_all_dataflows() {
        for df in Dataflow::ALL {
            check_counts_match(10, 6, 7, 4, 4, df);
            check_counts_match(4, 4, 4, 4, 4, df);
            check_counts_match(17, 3, 5, 8, 2, df);
            check_counts_match(1, 1, 1, 4, 4, df);
        }
    }

    #[test]
    fn utilization_bounds() {
        let shape = GemmShape::new(10, 6, 7);
        for df in Dataflow::ALL {
            let dims = shape.project(df);
            let r = analyze(&dims, ArrayShape::new(4, 4));
            assert!(r.mapping_utilization > 0.0 && r.mapping_utilization <= 1.0);
            assert!(r.compute_utilization > 0.0 && r.compute_utilization < 1.0);
        }
    }

    #[test]
    fn sram_accesses_per_mac_reflects_reuse() {
        // A bigger array exploits more spatial reuse per SRAM read for the
        // same workload (fewer re-streams due to fewer folds).
        let shape = GemmShape::new(64, 16, 64);
        let dims = shape.project(Dataflow::OutputStationary);
        let small = analyze(&dims, ArrayShape::square(8));
        let large = analyze(&dims, ArrayShape::square(64));
        assert!(large.sram_accesses_per_mac() < small.sram_accesses_per_mac());
    }

    #[test]
    fn total_cycles_equal_across_dataflows_for_symmetric_shapes() {
        // Eq. 3 is dataflow-independent given (S_R, S_C, T); for a cubic
        // GEMM all three projections coincide.
        let shape = GemmShape::new(12, 12, 12);
        let cycles: Vec<u64> = Dataflow::ALL
            .iter()
            .map(|&df| analyze(&shape.project(df), ArrayShape::square(4)).total_cycles)
            .collect();
        assert_eq!(cycles[0], cycles[1]);
        assert_eq!(cycles[1], cycles[2]);
    }
}
