//! Input-Stationary trace generation (Fig. 3c / Fig. 5c of the paper).
//!
//! The mirror image of weight-stationary: IFMAP elements are pre-filled
//! into the array (column `j` holds the convolution window of OFMAP pixel
//! `j`; rows carry window elements), then *filter* elements stream from the
//! left edge, one filter per time step. Partial sums reduce down each
//! column, producing one OFMAP pixel value per column per cycle.
//!
//! Per Table III: rows ↔ `W_conv`, columns ↔ `N_ofmap`, time ↔ `N_filter`.
//! Folding along rows splits the contraction, requiring partial-sum
//! accumulation exactly as in WS.

use scalesim_memory::AddressMap;
use scalesim_topology::MappedDims;

use crate::fold::FoldPlan;
use crate::trace::TraceSink;
use crate::ArrayShape;

/// Emits the full IS access trace for `dims` on `array`.
pub(crate) fn trace<M: AddressMap + ?Sized, S: TraceSink + ?Sized>(
    dims: &MappedDims,
    array: ArrayShape,
    map: &M,
    sink: &mut S,
) {
    let t = dims.temporal; // filters (GEMM n) unroll in time.
    for fold in FoldPlan::new(dims, array) {
        sink.fold_begin(&fold);
        let b = fold.base_cycle;
        let ru = fold.rows_used;
        let cu = fold.cols_used;
        let k_base = fold.row_base; // contraction (window) offset
        let m_base = fold.col_base; // OFMAP pixel offset

        // IFMAP fill: column j is loaded with the window of pixel
        // (m_base + j), one window row per cycle, shifting down.
        for p in 0..ru {
            let k = k_base + (ru - 1 - p);
            for j in 0..cu {
                sink.read_a(b + p, map.a(m_base + j, k));
            }
        }

        // Filter stream: row i receives element (k_base + i) of filter nt
        // at cycle b + r' + nt + i.
        for nt in 0..t {
            for i in 0..ru {
                sink.read_b(b + ru + nt + i, map.b(k_base + i, nt));
            }
        }

        // Outputs: (pixel m_base + j, filter nt) exits the bottom of column
        // j at cycle b + 2r' + nt + j - 1, accumulating across row folds.
        let spill = fold.fr > 0;
        for nt in 0..t {
            for j in 0..cu {
                let cycle = b + 2 * ru + nt + j - 1;
                let addr = map.o(m_base + j, nt);
                if spill {
                    sink.read_o(cycle, addr);
                }
                sink.write_o(cycle, addr);
            }
        }

        sink.fold_end(&fold);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fold::fold_duration;
    use crate::trace::CountingSink;
    use scalesim_memory::{GemmAddressMap, RegionOffsets};
    use scalesim_topology::{Dataflow, GemmShape};

    fn run(m: u64, k: u64, n: u64, rows: u64, cols: u64) -> CountingSink {
        let shape = GemmShape::new(m, k, n);
        let dims = shape.project(Dataflow::InputStationary);
        let map = GemmAddressMap::from_shape(shape, RegionOffsets::default());
        let mut sink = CountingSink::new();
        trace(&dims, ArrayShape::new(rows, cols), &map, &mut sink);
        sink
    }

    #[test]
    fn single_fold_counts_and_horizon() {
        // m=4 pixels, k=4 window, n=5 filters on 4x4: S_R=4, S_C=4, T=5.
        let sink = run(4, 4, 5, 4, 4);
        let c = sink.counts();
        assert_eq!(c.a_reads, 4 * 4); // ifmap tile filled once
        assert_eq!(c.b_reads, 4 * 5); // each filter streamed through rows
        assert_eq!(c.o_writes, 5 * 4);
        assert_eq!(c.o_reads, 0);
        assert_eq!(sink.last_cycle(), fold_duration(4, 4, 5) - 1);
    }

    #[test]
    fn contraction_folds_emit_partial_sum_reads() {
        let sink = run(4, 8, 5, 4, 4);
        let c = sink.counts();
        assert_eq!(c.o_reads, 5 * 4);
        assert_eq!(c.o_writes, 2 * 5 * 4);
    }

    #[test]
    fn pixel_folds_restream_filters() {
        // m=8 pixels on 4 columns -> two column folds; filters stream twice.
        let sink = run(8, 4, 5, 4, 4);
        let c = sink.counts();
        assert_eq!(c.b_reads, 2 * 4 * 5);
        assert_eq!(c.a_reads, 8 * 4);
    }

    #[test]
    fn trace_horizon_equals_fold_plan_total() {
        let shape = GemmShape::new(7, 9, 6);
        let dims = shape.project(Dataflow::InputStationary);
        let plan_total = FoldPlan::new(&dims, ArrayShape::new(4, 4)).total_cycles();
        let sink = run(7, 9, 6, 4, 4);
        assert_eq!(sink.last_cycle() + 1, plan_total);
    }
}
