#![warn(missing_docs)]

//! The energy model behind Fig. 12 of the paper.
//!
//! For a given workload and hardware configuration, "the energy consumption
//! directly depends on the cycles MAC units have been active and the number
//! of accesses to SRAM and DRAM" (Sec. IV-A). Four components are modeled,
//! in *relative* energy units (1.0 = one MAC operation):
//!
//! * **MAC** — one unit per useful multiply-accumulate.
//! * **Idle PE** — the cost of clocking/powering a provisioned PE for a
//!   cycle in which it does no useful work. This is the term that lets a
//!   faster (partitioned) configuration "steal runtime from powering the
//!   massive compute array": a monolithic array that finishes late pays
//!   idle energy on every PE for every extra cycle.
//! * **SRAM** — per on-chip scratchpad access.
//! * **DRAM** — per off-chip access; the dominant per-access cost.
//!
//! The default constants follow the widely used Eyeriss-style ratios
//! (SRAM ≈ 6×, DRAM ≈ 200× a MAC; idle ≈ 0.1×). The paper does not publish
//! its constants; Fig. 12's qualitative behaviour (monolithic wins at small
//! MAC budgets, partitioning wins at large ones) depends only on the
//! ordering `DRAM ≫ SRAM ≫ MAC > idle`, which any reasonable choice
//! preserves — see DESIGN.md.

use serde::{Deserialize, Serialize};

/// Relative per-event energy constants.
///
/// ```
/// use scalesim_energy::EnergyModel;
///
/// let model = EnergyModel::default();
/// let e = model.evaluate(1_000_000, 1_200_000, 30_000, 4_000);
/// assert!(e.dram > e.sram); // 4k DRAM accesses cost more than 30k SRAM
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Energy of one MAC operation (the unit).
    pub mac: f64,
    /// Energy of one PE sitting idle for one cycle.
    pub idle_pe: f64,
    /// Energy of one SRAM access.
    pub sram: f64,
    /// Energy of one DRAM access.
    pub dram: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            mac: 1.0,
            idle_pe: 0.1,
            sram: 6.0,
            dram: 200.0,
        }
    }
}

impl EnergyModel {
    /// Evaluates the model.
    ///
    /// * `mac_ops` — useful MACs performed.
    /// * `pe_cycles` — total provisioned PE-cycles
    ///   (`PEs × runtime`, summed over partitions). Must be ≥ `mac_ops`;
    ///   the difference is idle time.
    /// * `sram_accesses` — total SRAM reads + writes.
    /// * `dram_accesses` — total DRAM reads + writes.
    ///
    /// # Panics
    ///
    /// Panics if `pe_cycles < mac_ops` (more work than provisioned cycles
    /// is physically impossible and indicates an accounting bug upstream).
    pub fn evaluate(
        &self,
        mac_ops: u64,
        pe_cycles: u64,
        sram_accesses: u64,
        dram_accesses: u64,
    ) -> EnergyBreakdown {
        assert!(
            pe_cycles >= mac_ops,
            "pe_cycles ({pe_cycles}) must cover mac_ops ({mac_ops})"
        );
        let idle_cycles = pe_cycles - mac_ops;
        EnergyBreakdown {
            mac: self.mac * mac_ops as f64,
            idle: self.idle_pe * idle_cycles as f64,
            sram: self.sram * sram_accesses as f64,
            dram: self.dram * dram_accesses as f64,
        }
    }
}

/// Energy by component, in MAC-equivalent units.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// Useful compute energy.
    pub mac: f64,
    /// Idle (provisioned-but-unused PE-cycle) energy.
    pub idle: f64,
    /// On-chip memory access energy.
    pub sram: f64,
    /// Off-chip access energy.
    pub dram: f64,
}

impl EnergyBreakdown {
    /// Total energy.
    pub fn total(&self) -> f64 {
        self.mac + self.idle + self.sram + self.dram
    }

    /// Sums another breakdown into this one (e.g. across partitions or
    /// layers).
    pub fn accumulate(&mut self, other: &EnergyBreakdown) {
        self.mac += other.mac;
        self.idle += other.idle;
        self.sram += other.sram;
        self.dram += other.dram;
    }

    /// Fraction of the total spent on off-chip traffic.
    pub fn dram_fraction(&self) -> f64 {
        let total = self.total();
        if total == 0.0 {
            0.0
        } else {
            self.dram / total
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_preserve_the_required_ordering() {
        let m = EnergyModel::default();
        assert!(m.dram > m.sram);
        assert!(m.sram > m.mac);
        assert!(m.mac > m.idle_pe);
    }

    #[test]
    fn evaluate_splits_components() {
        let m = EnergyModel::default();
        let e = m.evaluate(100, 150, 10, 2);
        assert_eq!(e.mac, 100.0);
        assert_eq!(e.idle, 5.0); // 50 idle cycles * 0.1
        assert_eq!(e.sram, 60.0);
        assert_eq!(e.dram, 400.0);
        assert_eq!(e.total(), 565.0);
    }

    #[test]
    #[should_panic(expected = "must cover")]
    fn impossible_occupancy_panics() {
        EnergyModel::default().evaluate(100, 50, 0, 0);
    }

    #[test]
    fn accumulate_sums_componentwise() {
        let m = EnergyModel::default();
        let mut a = m.evaluate(10, 10, 1, 1);
        let b = m.evaluate(20, 30, 2, 0);
        a.accumulate(&b);
        assert_eq!(a.mac, 30.0);
        assert_eq!(a.idle, 1.0);
        assert_eq!(a.sram, 18.0);
        assert_eq!(a.dram, 200.0);
    }

    #[test]
    fn dram_fraction_handles_zero_total() {
        assert_eq!(EnergyBreakdown::default().dram_fraction(), 0.0);
        let e = EnergyModel::default().evaluate(0, 0, 0, 5);
        assert_eq!(e.dram_fraction(), 1.0);
    }

    #[test]
    fn idle_term_penalizes_slow_monolithic_configs() {
        // Same work, same memory traffic; config B takes 4x the runtime on
        // the same PE count -> strictly more energy via the idle term.
        let m = EnergyModel::default();
        let fast = m.evaluate(1000, 2000, 100, 10);
        let slow = m.evaluate(1000, 8000, 100, 10);
        assert!(slow.total() > fast.total());
    }
}
