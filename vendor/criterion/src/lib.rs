//! Offline stand-in for `criterion`, covering the macro and method surface
//! used by `crates/bench`: `criterion_group!`/`criterion_main!`,
//! `Criterion::bench_function`, `benchmark_group` (+ `sample_size`,
//! `bench_function`, `finish`), `Bencher::iter`/`iter_batched` (with
//! [`BatchSize`]) and `black_box`.
//!
//! Instead of criterion's statistical machinery this runs each benchmark a
//! handful of times and prints a mean wall-clock figure — enough to compare
//! runs by eye and to keep `cargo bench` compiling and running offline.
//! Positional command-line arguments (`cargo bench -- <filter>`) select
//! benchmarks by substring match, as in real criterion.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target measurement budget per benchmark.
const BUDGET: Duration = Duration::from_millis(300);
/// Hard cap on timed iterations.
const MAX_ITERS: u64 = 1000;

/// Times a single benchmark body.
pub struct Bencher {
    mean_ns: Option<f64>,
}

impl Bencher {
    /// Runs `body` repeatedly within the budget and records the mean time.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut body: F) {
        // One warm-up run, which also sizes the measurement loop.
        let warm_start = Instant::now();
        black_box(body());
        let warm = warm_start.elapsed();

        let iters = if warm.is_zero() {
            MAX_ITERS
        } else {
            (BUDGET.as_nanos() / warm.as_nanos().max(1)).clamp(1, MAX_ITERS as u128) as u64
        };
        let start = Instant::now();
        for _ in 0..iters {
            black_box(body());
        }
        self.mean_ns = Some(start.elapsed().as_nanos() as f64 / iters as f64);
    }

    /// Like [`Bencher::iter`], but with a per-iteration `setup` whose cost
    /// is excluded from the timing (fresh input every call).
    pub fn iter_batched<I, R, S, F>(&mut self, mut setup: S, mut body: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        let warm_input = setup();
        let warm_start = Instant::now();
        black_box(body(warm_input));
        let warm = warm_start.elapsed();

        let iters = if warm.is_zero() {
            MAX_ITERS
        } else {
            (BUDGET.as_nanos() / warm.as_nanos().max(1)).clamp(1, MAX_ITERS as u128) as u64
        };
        let mut timed = Duration::ZERO;
        for _ in 0..iters {
            let input = setup();
            let start = Instant::now();
            black_box(body(input));
            timed += start.elapsed();
        }
        self.mean_ns = Some(timed.as_nanos() as f64 / iters as f64);
    }
}

/// How real criterion batches inputs for `iter_batched`. The stub times
/// every call individually, so the variants only exist for compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Inputs are cheap to hold; criterion would batch many per sample.
    SmallInput,
    /// Inputs are expensive to hold; criterion would batch few per sample.
    LargeInput,
    /// One setup per timed call.
    PerIteration,
}

/// The benchmark driver handed to `criterion_group!` targets.
pub struct Criterion {
    filters: Vec<String>,
}

impl Default for Criterion {
    /// Reads name filters from the command line, like real criterion:
    /// positional arguments passed after `cargo bench ... --` select
    /// benchmarks by substring match (flags are ignored).
    fn default() -> Criterion {
        Criterion {
            filters: std::env::args()
                .skip(1)
                .filter(|arg| !arg.starts_with('-'))
                .collect(),
        }
    }
}

impl Criterion {
    fn selected(&self, name: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| name.contains(f.as_str()))
    }

    /// Runs one named benchmark (skipped silently when filters exclude it).
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.into();
        if !self.selected(&name) {
            return self;
        }
        let mut bencher = Bencher { mean_ns: None };
        body(&mut bencher);
        match bencher.mean_ns {
            Some(ns) => println!("bench {name:<50} {:>14.0} ns/iter", ns),
            None => println!("bench {name:<50} (no measurement)"),
        }
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub sizes runs by wall clock.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name.into());
        self.criterion.bench_function(full, body);
        self
    }

    /// Ends the group (no-op; present for API compatibility).
    pub fn finish(self) {}
}

/// Declares a group function running the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` for a `harness = false` bench binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_and_returns() {
        // Hermetic: the test harness's own arguments must not filter.
        let mut c = Criterion {
            filters: Vec::new(),
        };
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut group = c.benchmark_group("group");
        group.sample_size(10);
        group.bench_function("noop2", |b| b.iter(|| black_box(2 + 2)));
        group.finish();
    }

    #[test]
    fn filters_select_benchmarks_by_substring() {
        let mut c = Criterion {
            filters: vec!["warm".to_owned()],
        };
        let mut warm_ran = false;
        let mut cold_ran = false;
        c.bench_function("group/warm_rerun", |b| {
            warm_ran = true;
            b.iter(|| black_box(1))
        });
        c.bench_function("group/cold_jobs_1", |b| {
            cold_ran = true;
            b.iter(|| black_box(2))
        });
        assert!(warm_ran, "matching benchmarks run");
        assert!(!cold_ran, "non-matching benchmarks are skipped");
    }

    #[test]
    fn iter_batched_runs_setup_per_call() {
        let mut setups = 0u64;
        let mut calls = 0u64;
        let mut bencher = Bencher { mean_ns: None };
        bencher.iter_batched(
            || {
                setups += 1;
                setups
            },
            |input| {
                calls += 1;
                black_box(input)
            },
            BatchSize::PerIteration,
        );
        assert_eq!(setups, calls, "every timed call gets a fresh input");
        assert!(bencher.mean_ns.is_some());
    }
}
