//! Offline stand-in for `criterion`, covering the macro and method surface
//! used by `crates/bench`: `criterion_group!`/`criterion_main!`,
//! `Criterion::bench_function`, `benchmark_group` (+ `sample_size`,
//! `bench_function`, `finish`), `Bencher::iter` and `black_box`.
//!
//! Instead of criterion's statistical machinery this runs each benchmark a
//! handful of times and prints a mean wall-clock figure — enough to compare
//! runs by eye and to keep `cargo bench` compiling and running offline.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target measurement budget per benchmark.
const BUDGET: Duration = Duration::from_millis(300);
/// Hard cap on timed iterations.
const MAX_ITERS: u64 = 1000;

/// Times a single benchmark body.
pub struct Bencher {
    mean_ns: Option<f64>,
}

impl Bencher {
    /// Runs `body` repeatedly within the budget and records the mean time.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut body: F) {
        // One warm-up run, which also sizes the measurement loop.
        let warm_start = Instant::now();
        black_box(body());
        let warm = warm_start.elapsed();

        let iters = if warm.is_zero() {
            MAX_ITERS
        } else {
            (BUDGET.as_nanos() / warm.as_nanos().max(1)).clamp(1, MAX_ITERS as u128) as u64
        };
        let start = Instant::now();
        for _ in 0..iters {
            black_box(body());
        }
        self.mean_ns = Some(start.elapsed().as_nanos() as f64 / iters as f64);
    }
}

/// The benchmark driver handed to `criterion_group!` targets.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.into();
        let mut bencher = Bencher { mean_ns: None };
        body(&mut bencher);
        match bencher.mean_ns {
            Some(ns) => println!("bench {name:<50} {:>14.0} ns/iter", ns),
            None => println!("bench {name:<50} (no measurement)"),
        }
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub sizes runs by wall clock.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name.into());
        self.criterion.bench_function(full, body);
        self
    }

    /// Ends the group (no-op; present for API compatibility).
    pub fn finish(self) {}
}

/// Declares a group function running the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` for a `harness = false` bench binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_and_returns() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut group = c.benchmark_group("group");
        group.sample_size(10);
        group.bench_function("noop2", |b| b.iter(|| black_box(2 + 2)));
        group.finish();
    }
}
