//! Offline stand-in for `crossbeam`, covering the API surface this
//! workspace uses: `crossbeam::thread::scope` with crossbeam's
//! `Result`-returning signature and `&Scope`-taking spawn closures.
//!
//! Since Rust 1.63 the standard library provides scoped threads, so this
//! shim is a thin adapter over [`std::thread::scope`]. One behavioural
//! difference is acceptable for our callers (which all `.expect()` the
//! result): a panicking child thread propagates through `std::thread::scope`
//! rather than surfacing as `Err` — either way the process reports the
//! panic and aborts the computation.

#![warn(missing_docs)]

/// Scoped-thread API compatible with `crossbeam::thread`.
pub mod thread {
    use std::any::Any;

    /// Error payload of a panicked scope, as in crossbeam.
    pub type Result<T> = std::result::Result<T, Box<dyn Any + Send + 'static>>;

    /// A scope for spawning threads that may borrow from the caller's stack.
    #[derive(Clone, Copy)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Join handle for a thread spawned in a [`Scope`].
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish, returning its result.
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; the closure receives the scope so it can
        /// spawn further threads, mirroring crossbeam's signature.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&scope)),
            }
        }
    }

    /// Creates a scope in which borrowed-data threads can be spawned; all
    /// threads are joined before this returns.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_and_collects() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = crate::thread::scope(|scope| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| scope.spawn(move |_| chunk.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let n = crate::thread::scope(|scope| {
            scope
                .spawn(|inner| inner.spawn(|_| 21u32).join().unwrap() * 2)
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(n, 42);
    }
}
