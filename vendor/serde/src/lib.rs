//! Offline stand-in for `serde`.
//!
//! The workspace uses `#[derive(Serialize, Deserialize)]` purely as a
//! forward-compatibility marker — no code path performs serde-driven
//! (de)serialization; all file formats (config INI, topology CSV, report
//! CSV, server JSON) are hand-rolled. This crate provides just enough
//! surface for those derives to compile without network access: two marker
//! traits and the derive macros.

#![warn(missing_docs)]

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize<'de>`.
pub trait Deserialize<'de> {}

pub use serde_derive::{Deserialize, Serialize};

macro_rules! impl_markers {
    ($($t:ty),* $(,)?) => {
        $(
            impl Serialize for $t {}
            impl<'de> Deserialize<'de> for $t {}
        )*
    };
}

impl_markers!(
    bool, char, u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, f32, f64, String
);

impl<T: Serialize> Serialize for Vec<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}

#[cfg(test)]
mod tests {
    use super::*;

    // The derives emit `::serde::`-rooted paths, which cannot resolve from
    // inside this crate itself, so the probe impls are written by hand here;
    // downstream-crate derive expansion is covered by the whole workspace.
    struct Probe {
        _x: u64,
    }
    impl Serialize for Probe {}
    impl<'de> Deserialize<'de> for Probe {}

    enum ProbeEnum {
        _A,
        _B(u32),
    }
    impl Serialize for ProbeEnum {}

    fn assert_serialize<T: Serialize>() {}

    #[test]
    fn derives_emit_marker_impls() {
        assert_serialize::<Probe>();
        assert_serialize::<ProbeEnum>();
        assert_serialize::<Vec<Probe>>();
        assert_serialize::<Option<u64>>();
    }
}
