//! Offline stand-in for `serde_derive`.
//!
//! This build environment has no access to crates.io, so the real
//! `serde_derive` (and its `syn`/`quote` dependency tree) cannot be used.
//! The repo only relies on `#[derive(Serialize, Deserialize)]` as a *marker*
//! — nothing calls serde's serialization machinery — so these derives simply
//! emit the corresponding marker-trait impls for the annotated type.
//!
//! Limitations (deliberate): generic types are not supported; every type in
//! this workspace that derives the serde traits is concrete.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the type name following the `struct` / `enum` / `union` keyword.
fn type_name(input: TokenStream) -> String {
    let mut tokens = input.into_iter();
    while let Some(tok) = tokens.next() {
        if let TokenTree::Ident(ident) = &tok {
            let kw = ident.to_string();
            if kw == "struct" || kw == "enum" || kw == "union" {
                if let Some(TokenTree::Ident(name)) = tokens.next() {
                    return name.to_string();
                }
            }
        }
    }
    panic!("serde stub derive: could not find a type name in the input");
}

/// Marker derive: `impl serde::Serialize for T {}`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .expect("serde stub derive: generated impl must parse")
}

/// Marker derive: `impl<'de> serde::Deserialize<'de> for T {}`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .expect("serde stub derive: generated impl must parse")
}
