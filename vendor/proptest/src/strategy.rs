//! Value-generation strategies: the subset of proptest's `Strategy` world
//! used by this workspace.

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy so differently shaped strategies with the
    /// same value type can be mixed (e.g. in `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            sample: Box::new(move |rng| self.new_value(rng)),
        }
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// A type-erased strategy (see [`Strategy::boxed`]).
pub struct BoxedStrategy<V> {
    sample: Box<dyn Fn(&mut TestRng) -> V>,
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn new_value(&self, rng: &mut TestRng) -> V {
        (self.sample)(rng)
    }
}

/// Uniform choice among boxed strategies — the engine behind `prop_oneof!`.
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// A union over `options`; must be non-empty.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn new_value(&self, rng: &mut TestRng) -> V {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].new_value(rng)
    }
}

/// Length bounds for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

/// The result of [`crate::collection::vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> VecStrategy<S> {
    pub(crate) fn new(element: S, size: SizeRange) -> Self {
        VecStrategy { element, size }
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi - self.size.lo) as u64;
        let len = self.size.lo + rng.below(span.max(1)) as usize;
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}

/// The result of [`crate::option::of`].
pub struct OptionStrategy<S> {
    element: S,
}

impl<S: Strategy> OptionStrategy<S> {
    pub(crate) fn new(element: S) -> Self {
        OptionStrategy { element }
    }
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.below(4) == 0 {
            None
        } else {
            Some(self.element.new_value(rng))
        }
    }
}

// ---------------------------------------------------------------- integers

macro_rules! impl_int_range {
    ($($t:ty),* $(,)?) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let lo = self.start as i128;
                    let hi = self.end as i128;
                    assert!(lo < hi, "empty integer range strategy");
                    let span = (hi - lo) as u128;
                    let draw = if span == 0 || span > u128::from(u64::MAX) {
                        u128::from(rng.next_u64())
                    } else {
                        u128::from(rng.below(span as u64))
                    };
                    (lo + (draw % span.max(1)) as i128) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let lo = *self.start() as i128;
                    let hi = *self.end() as i128 + 1;
                    let span = (hi - lo) as u128;
                    let draw = u128::from(rng.next_u64()) % span.max(1);
                    (lo + draw as i128) as $t
                }
            }
        )*
    };
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// ------------------------------------------------------------------ tuples

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

// ----------------------------------------------------------- regex strings

/// `&'static str` is a strategy producing strings matching the pattern
/// (proptest's regex-string convention), for the regex subset documented in
/// the crate docs.
impl Strategy for &'static str {
    type Value = String;

    fn new_value(&self, rng: &mut TestRng) -> String {
        sample_regex(self, rng)
    }
}

/// Cap for unbounded quantifiers (`*`, `+`).
const UNBOUNDED_CAP: u64 = 8;

fn sample_regex(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        let (atom, next) = parse_atom(&chars, i, pattern);
        i = next;
        let (min, max, next) = parse_quantifier(&chars, i, pattern);
        i = next;
        let span = max - min + 1;
        let reps = min + rng.below(span.max(1));
        for _ in 0..reps {
            out.push(atom.sample(rng));
        }
    }
    out
}

/// One generatable unit: a literal char or a character class.
enum Atom {
    Literal(char),
    Class(Vec<(char, char)>), // inclusive ranges
}

impl Atom {
    fn sample(&self, rng: &mut TestRng) -> char {
        match self {
            Atom::Literal(c) => *c,
            Atom::Class(ranges) => {
                let total: u64 = ranges
                    .iter()
                    .map(|(lo, hi)| (*hi as u64) - (*lo as u64) + 1)
                    .sum();
                let mut pick = rng.below(total.max(1));
                for (lo, hi) in ranges {
                    let size = (*hi as u64) - (*lo as u64) + 1;
                    if pick < size {
                        return char::from_u32(*lo as u32 + pick as u32).unwrap_or(*lo);
                    }
                    pick -= size;
                }
                ranges[0].0
            }
        }
    }
}

fn class_for_escape(c: char, pattern: &str) -> Atom {
    match c {
        'd' => Atom::Class(vec![('0', '9')]),
        'w' => Atom::Class(vec![('0', '9'), ('A', 'Z'), ('a', 'z'), ('_', '_')]),
        's' => Atom::Literal(' '),
        'n' => Atom::Literal('\n'),
        't' => Atom::Literal('\t'),
        '\\' | '.' | '[' | ']' | '{' | '}' | '(' | ')' | '*' | '+' | '?' | '|' | '^' | '$'
        | '-' => Atom::Literal(c),
        other => panic!("proptest stub: unsupported escape `\\{other}` in regex `{pattern}`"),
    }
}

fn parse_atom(chars: &[char], mut i: usize, pattern: &str) -> (Atom, usize) {
    match chars[i] {
        '[' => {
            i += 1;
            let mut ranges = Vec::new();
            while i < chars.len() && chars[i] != ']' {
                let lo = if chars[i] == '\\' {
                    i += 1;
                    match class_for_escape(chars[i], pattern) {
                        Atom::Literal(c) => c,
                        Atom::Class(mut r) => {
                            // `[\d...]`: splice the class in directly.
                            ranges.append(&mut r);
                            i += 1;
                            continue;
                        }
                    }
                } else {
                    chars[i]
                };
                if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                    ranges.push((lo, chars[i + 2]));
                    i += 3;
                } else {
                    ranges.push((lo, lo));
                    i += 1;
                }
            }
            assert!(
                i < chars.len(),
                "proptest stub: unterminated character class in regex `{pattern}`"
            );
            (Atom::Class(ranges), i + 1)
        }
        '\\' => (class_for_escape(chars[i + 1], pattern), i + 2),
        '.' => (Atom::Class(vec![(' ', '~')]), i + 1),
        '(' | ')' | '|' => {
            panic!("proptest stub: groups/alternation unsupported in regex `{pattern}`")
        }
        c => (Atom::Literal(c), i + 1),
    }
}

fn parse_quantifier(chars: &[char], i: usize, pattern: &str) -> (u64, u64, usize) {
    if i >= chars.len() {
        return (1, 1, i);
    }
    match chars[i] {
        '?' => (0, 1, i + 1),
        '*' => (0, UNBOUNDED_CAP, i + 1),
        '+' => (1, UNBOUNDED_CAP, i + 1),
        '{' => {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| i + p)
                .unwrap_or_else(|| {
                    panic!("proptest stub: unterminated quantifier in regex `{pattern}`")
                });
            let body: String = chars[i + 1..close].iter().collect();
            let (min, max) = match body.split_once(',') {
                None => {
                    let n: u64 = body.trim().parse().expect("numeric quantifier");
                    (n, n)
                }
                Some((lo, "")) => (
                    lo.trim().parse().expect("numeric quantifier"),
                    UNBOUNDED_CAP,
                ),
                Some((lo, hi)) => (
                    lo.trim().parse().expect("numeric quantifier"),
                    hi.trim().parse().expect("numeric quantifier"),
                ),
            };
            (min, max, close + 1)
        }
        _ => (1, 1, i),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::from_seed(42)
    }

    #[test]
    fn int_ranges_stay_in_bounds() {
        let mut r = rng();
        for _ in 0..2000 {
            let v = (1u64..600).new_value(&mut r);
            assert!((1..600).contains(&v));
            let s = (-20i64..20).new_value(&mut r);
            assert!((-20..20).contains(&s));
            let u = (0usize..3).new_value(&mut r);
            assert!(u < 3);
        }
    }

    #[test]
    fn tuples_and_map_compose() {
        let strat = (1u64..10, 1u64..10).prop_map(|(a, b)| a * b);
        let mut r = rng();
        for _ in 0..100 {
            let v = strat.new_value(&mut r);
            assert!((1..=81).contains(&v));
        }
    }

    #[test]
    fn regex_identifier_pattern() {
        let strat = "[A-Za-z][A-Za-z0-9_]{0,12}";
        let mut r = rng();
        for _ in 0..500 {
            let s = strat.new_value(&mut r);
            assert!(!s.is_empty() && s.len() <= 13, "bad len: {s:?}");
            let mut cs = s.chars();
            assert!(cs.next().unwrap().is_ascii_alphabetic());
            assert!(cs.all(|c| c.is_ascii_alphanumeric() || c == '_'));
        }
    }

    #[test]
    fn vec_and_option_strategies() {
        let vs = crate::collection::vec(1u64..5, 1..12);
        let os = crate::option::of(1u64..5);
        let mut r = rng();
        let mut saw_none = false;
        let mut saw_some = false;
        for _ in 0..300 {
            let v = vs.new_value(&mut r);
            assert!((1..12).contains(&v.len()));
            match os.new_value(&mut r) {
                None => saw_none = true,
                Some(x) => {
                    saw_some = true;
                    assert!((1..5).contains(&x));
                }
            }
        }
        assert!(saw_none && saw_some);
    }

    #[test]
    fn union_draws_from_all_branches() {
        let u = Union::new(vec![(0u64..1).boxed(), (100u64..101).boxed()]);
        let mut r = rng();
        let draws: Vec<u64> = (0..100).map(|_| u.new_value(&mut r)).collect();
        assert!(draws.contains(&0) && draws.contains(&100));
    }
}
