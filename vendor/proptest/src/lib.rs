//! Offline stand-in for `proptest`, implementing the subset of its API this
//! workspace uses: the `proptest!` macro, `prop_assert!`-family macros,
//! integer-range / tuple / regex-string strategies, `prop_map`,
//! `prop_oneof!`, `prop::collection::vec` and `prop::option::of`.
//!
//! Differences from real proptest, acceptable for this repo's tests:
//!
//! * **Deterministic**: the RNG is seeded from the test's module path and
//!   name, so every run explores the same cases (reproducible CI).
//! * **No shrinking**: a failing case reports its inputs (via `Debug`-free
//!   messages and the case index) but is not minimized.
//! * **Regex strategies** support the subset used here: literals, character
//!   classes (`[A-Za-z0-9_]`, ranges, `\d`/`\w`), and the quantifiers
//!   `{m}`, `{m,n}`, `?`, `*`, `+` (the unbounded ones capped at 8 repeats).

#![warn(missing_docs)]

pub mod strategy;
pub mod test_runner;

pub use strategy::{BoxedStrategy, Just, Strategy};
pub use test_runner::{TestCaseError, TestCaseResult, TestRng};

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::{SizeRange, Strategy, VecStrategy};

    /// A strategy producing `Vec`s of `element` with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy::new(element, size.into())
    }
}

/// Option strategies (`prop::option::of`).
pub mod option {
    use crate::strategy::{OptionStrategy, Strategy};

    /// A strategy producing `Some` of the inner value ~3/4 of the time.
    pub fn of<S: Strategy>(element: S) -> OptionStrategy<S> {
        OptionStrategy::new(element)
    }
}

/// Per-`proptest!`-block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases each test must run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps offline CI fast while
        // still exploring a meaningful sample.
        ProptestConfig { cases: 64 }
    }
}

/// Everything tests import: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{TestCaseError, TestCaseResult};
    pub use crate::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Namespaced strategy modules (`prop::collection`, `prop::option`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
    }
}

/// Asserts a condition inside a proptest case; on failure the case fails
/// with a message instead of panicking, so the harness can report the case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts two expressions are equal inside a proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}",
                stringify!($left),
                stringify!($right)
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = &$left;
        let right = &$right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// Asserts two expressions are unequal inside a proptest case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        if left == right {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {}",
                stringify!($left),
                stringify!($right)
            )));
        }
    }};
}

/// Rejects the current case (it is re-drawn, not counted as a failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Picks uniformly among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// The `proptest!` block: wraps `#[test]` functions whose arguments are
/// drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@body $config; $($rest)*);
    };
    (@body $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let strategies = ($($strategy,)+);
                let mut rng = $crate::TestRng::deterministic(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                let mut passed = 0u32;
                let mut attempts = 0u32;
                let max_attempts = config.cases.saturating_mul(16).max(1024);
                while passed < config.cases {
                    attempts += 1;
                    if attempts > max_attempts {
                        panic!(
                            "proptest {}: too many rejected cases ({} attempts for {} cases)",
                            stringify!($name), attempts, config.cases
                        );
                    }
                    let ($($arg,)+) =
                        $crate::Strategy::new_value(&strategies, &mut rng);
                    let outcome = (move || -> $crate::TestCaseResult {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    match outcome {
                        ::std::result::Result::Ok(()) => passed += 1,
                        ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => continue,
                        ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => panic!(
                            "proptest {} failed at case {}/{}: {}",
                            stringify!($name), passed + 1, config.cases, msg
                        ),
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@body $crate::ProptestConfig::default(); $($rest)*);
    };
}
