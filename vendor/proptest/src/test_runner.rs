//! The deterministic RNG and case-level error type behind `proptest!`.

/// Why a single drawn case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case violated an assertion; the test fails.
    Fail(String),
    /// The case violated a `prop_assume!`; it is re-drawn.
    Reject(String),
}

impl TestCaseError {
    /// A failing case with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejected (re-drawn) case with a reason.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Result of one drawn case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// A small, fast, deterministic RNG (SplitMix64).
///
/// Not cryptographic; exactly what a reproducible test-case generator
/// needs. Seeded from the test's fully qualified name so different tests
/// explore different sequences while each test is stable across runs.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded from `name` (usually `module_path!() + test name`).
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the name gives a well-mixed, stable seed.
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for byte in name.bytes() {
            seed ^= u64::from(byte);
            seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: seed }
    }

    /// A generator from an explicit seed.
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Modulo bias is irrelevant at test-generation quality.
        self.next_u64() % bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams_repeat() {
        let mut a = TestRng::deterministic("x::y");
        let mut b = TestRng::deterministic("x::y");
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_names_diverge() {
        let mut a = TestRng::deterministic("x::y");
        let mut b = TestRng::deterministic("x::z");
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = TestRng::from_seed(7);
        for _ in 0..1000 {
            assert!(rng.below(13) < 13);
        }
    }
}
