//! The scale-up vs. scale-out trade-off, on one Transformer layer.
//!
//! Takes the TF0 layer (Table IV of the paper), fixes a 2^14-MAC budget,
//! and sweeps the partition count from a single monolithic 128×128 array
//! down to 256 little 8×8 arrays — reporting the runtime, the stall-free
//! DRAM bandwidth each configuration demands, and its energy. This is the
//! experiment behind Figs. 11–12 of the paper in miniature: partitioning
//! buys runtime and pays for it in bandwidth.
//!
//! Run: `cargo run --release --example scaling_tradeoff`

use scalesim::{ArrayShape, PartitionGrid, SimConfig, Simulator};
use scalesim_topology::networks;

fn main() {
    let layer = networks::language_model("TF0").expect("TF0 is built in");
    let budget: u64 = 1 << 14;

    println!("TF0 (31999 x 84 x 1024) on {budget} MACs, OS dataflow");
    println!(
        "{:>10} {:>12} {:>12} {:>14} {:>14}",
        "partitions", "array", "cycles", "BW (B/cycle)", "energy"
    );

    let mut p = 1u64;
    while budget / p >= 64 {
        // Square-ish grid of square-ish arrays.
        let grid_rows = 1u64 << (p.trailing_zeros().div_ceil(2));
        let grid = PartitionGrid::new(grid_rows, p / grid_rows);
        let per = budget / p;
        let rows = 1u64 << (per.trailing_zeros().div_ceil(2));
        let array = ArrayShape::new(rows, per / rows);

        let sim = Simulator::new(SimConfig::builder().array(array).build()).with_grid(grid);
        let report = sim.run_layer(&layer);
        println!(
            "{:>10} {:>12} {:>12} {:>14.2} {:>14.3e}",
            p,
            array.to_string(),
            report.total_cycles,
            report.required_bandwidth(),
            report.energy.total(),
        );
        p *= 2;
    }

    println!();
    println!("runtime falls as partitions grow; the bandwidth bill rises —");
    println!("the sweet spot is wherever your DRAM budget crosses the curve.");
}
