//! Designing one accelerator for many workloads (Sec. IV-B of the paper).
//!
//! Given a mixed workload set — a few ResNet-50 convolutions plus two
//! language-model GEMMs — find each layer's individually optimal monolithic
//! aspect ratio under a 2^14-MAC budget, then pick the configuration that
//! minimizes *total* runtime across the set (the paper's pareto method),
//! and finally sanity-check the analytical winner against the full
//! cycle-accurate simulator.
//!
//! Run: `cargo run --release --example design_search`

use scalesim::{Dataflow, SimConfig, Simulator};
use scalesim_analytical::{
    best_scaleup, exact_scaleup, pareto_optimal, AnalyticalModel, ArrayShape, MappedDims,
};
use scalesim_topology::{networks, Layer};

fn main() {
    let resnet = networks::resnet50();
    let mut layers: Vec<Layer> = ["Conv1", "CB2a_2", "ID4b_3"]
        .iter()
        .map(|n| resnet.layer(n).expect("built-in layer").clone())
        .collect();
    layers.push(networks::language_model("TF1").unwrap());
    layers.push(networks::language_model("GNMT0").unwrap());

    let budget: u64 = 1 << 14;
    let model = AnalyticalModel;
    let workloads: Vec<MappedDims> = layers
        .iter()
        .map(|l| l.shape().project(Dataflow::OutputStationary))
        .collect();

    println!("per-layer optimal aspect ratios at {budget} MACs:");
    let mut candidates: Vec<ArrayShape> = Vec::new();
    for (layer, dims) in layers.iter().zip(&workloads) {
        let best = best_scaleup(dims, budget, 8, &model);
        println!(
            "  {:<8} -> {:>9}  ({} cycles)",
            layer.name(),
            best.array.to_string(),
            best.cycles
        );
        candidates.push(best.array);
    }
    candidates.sort();
    candidates.dedup();

    let outcome = pareto_optimal(&workloads, &candidates, |w, a| exact_scaleup(w, *a));
    println!();
    println!("candidates ranked by total runtime across the set:");
    for (rank, c) in outcome.ranked.iter().enumerate() {
        println!(
            "  #{} {:>9}: {:>9} cycles ({:.2}x the optimum)",
            rank + 1,
            c.config.to_string(),
            c.total_cycles,
            c.loss_versus(outcome.best().total_cycles)
        );
    }

    // The analytical model's stall-free cycles must agree with the
    // cycle-accurate simulator (same fold schedule).
    let winner = outcome.best().config;
    let sim = Simulator::new(SimConfig::builder().array(winner).build());
    let simulated: u64 = layers.iter().map(|l| sim.run_layer(l).total_cycles).sum();
    println!();
    println!(
        "analytical total for winner {winner}: {} cycles; simulator: {} cycles",
        outcome.best().total_cycles,
        simulated
    );
    assert_eq!(outcome.best().total_cycles, simulated);
    println!("exact agreement — the analytical model is the simulator's schedule in closed form.");
}
