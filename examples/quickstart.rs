//! Quickstart: simulate a CNN on a TPU-like accelerator in ten lines.
//!
//! Builds a 32×32 output-stationary systolic array with the paper's SRAM
//! sizing, runs AlexNet through it layer by layer, and prints the
//! per-layer report (cycles, utilization, SRAM/DRAM traffic, stall-free
//! bandwidth requirement, energy).
//!
//! Run: `cargo run --release --example quickstart`

use scalesim::{SimConfig, Simulator};
use scalesim_topology::networks;

fn main() {
    let config = SimConfig::default();
    let sim = Simulator::new(config);

    let network = networks::alexnet();
    let report = sim.run_topology(&network);

    println!("{report}");
    println!();
    println!(
        "peak stall-free DRAM bandwidth requirement: {:.2} bytes/cycle",
        report.peak_required_bandwidth()
    );
    println!(
        "energy breakdown: mac {:.2e}, idle {:.2e}, sram {:.2e}, dram {:.2e}",
        report.total_energy().mac,
        report.total_energy().idle,
        report.total_energy().sram,
        report.total_energy().dram,
    );
}
