//! Batch a scale-out sweep through the simulation engine and watch the
//! content-addressed cache absorb the redundancy.
//!
//! The sweep mirrors the paper's Section V methodology: ResNet-50's first
//! layer across monolithic and partitioned configurations, with every job
//! listed twice (as two cooperating users would). The engine runs each
//! distinct configuration once; duplicates are cache hits or single-flight
//! joins.
//!
//! Run with: `cargo run --release --example batch_sweep`

use scalesim_server::{parse_manifest, run_batch, Engine};

fn main() {
    let manifest = "\
# ResNet-50 Conv1 scale-out sweep; every job appears twice.
network=resnet50 layer=Conv1 grid=1x1
network=resnet50 layer=Conv1 grid=2x2
network=resnet50 layer=Conv1 grid=4x4
network=resnet50 layer=Conv1 grid=1x1
network=resnet50 layer=Conv1 grid=2x2
network=resnet50 layer=Conv1 grid=4x4
";
    let jobs = parse_manifest(manifest).expect("manifest parses");
    let engine = Engine::new(4, 64);
    let outcome = run_batch(&engine, &jobs, 4).expect("batch runs");
    engine.shutdown();

    println!("{}", outcome.to_csv());
    for entry in &outcome.entries {
        let grid = entry.job.grid;
        println!(
            "grid {}x{}: {:>12} cycles  served: {}",
            grid.0,
            grid.1,
            entry.result.report.total_cycles(),
            entry.served.tag(),
        );
    }
    println!("{}", outcome.summary());
    assert_eq!(outcome.simulations, 3, "each distinct grid simulates once");
}
