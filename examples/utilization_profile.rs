//! Cycle-level array occupancy, rendered as a terminal histogram.
//!
//! Shows why two configurations with the same *average* utilization can
//! behave very differently: a convolution keeps the wavefront full for most
//! of its runtime, while a skinny FC layer on the same array never fills
//! more than one row. This is the data behind the utilization trends of
//! Fig. 9(b-c).
//!
//! Run: `cargo run --release --example utilization_profile`

use scalesim::{ArrayShape, Dataflow};
use scalesim_systolic::occupancy_histogram;
use scalesim_topology::networks;

fn render(name: &str, dims: &scalesim_topology::MappedDims, array: ArrayShape) {
    let hist = occupancy_histogram(dims, array);
    println!(
        "{name} on {array}: {} cycles, mean occupancy {:.1} PEs ({:.1}% of array), peak {}",
        hist.total_cycles(),
        hist.mean(),
        100.0 * hist.mean() / array.macs() as f64,
        hist.peak(),
    );
    // Bucket occupancies into tenths of the array for a compact profile.
    let buckets = 10usize;
    let mut cycles_per_bucket = vec![0u64; buckets + 1];
    for (occ, cycles) in hist.iter() {
        let idx = ((occ * buckets as u64) / array.macs()) as usize;
        cycles_per_bucket[idx.min(buckets)] += cycles;
    }
    let max = cycles_per_bucket.iter().copied().max().unwrap_or(1).max(1);
    for (i, &cycles) in cycles_per_bucket.iter().enumerate() {
        if cycles == 0 {
            continue;
        }
        let bar = "#".repeat((cycles * 40 / max).max(1) as usize);
        println!(
            "  {:>3}-{:>3}% busy | {:<40} {:>10} cycles",
            i * 10,
            ((i + 1) * 10).min(100),
            bar,
            cycles
        );
    }
    println!();
}

fn main() {
    let array = ArrayShape::square(32);
    let resnet = networks::resnet50();

    // A mid-network convolution: deep temporal dimension, full steady state.
    let conv = resnet.layer("CB2a_2").unwrap();
    render(
        "CB2a_2 (3x3 conv, OS)",
        &conv.shape().project(Dataflow::OutputStationary),
        array,
    );

    // The FC layer under OS: one output pixel -> a single active row.
    let fc = resnet.layer("FC1000").unwrap();
    render(
        "FC1000 (OS)",
        &fc.shape().project(Dataflow::OutputStationary),
        array,
    );

    // The same FC under WS: the array fills because the contraction
    // dimension maps onto rows instead.
    render(
        "FC1000 (WS)",
        &fc.shape().project(Dataflow::WeightStationary),
        array,
    );
}
