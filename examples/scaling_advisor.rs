//! The scaling advisor: "scale up or scale out, and to what shape?"
//!
//! Gives the paper's methodology as a single call: for a workload mix and
//! a MAC budget, recommend the best configuration — first with unlimited
//! DRAM bandwidth, then under increasingly tight interface budgets. Watch
//! the advice move from a many-partition grid back toward the monolithic
//! array as the memory system gets poorer.
//!
//! Run: `cargo run --release --example scaling_advisor`

use scalesim::Dataflow;
use scalesim_analytical::{recommend, AnalyticalModel, MappedDims};
use scalesim_topology::networks;

fn main() {
    // A service mix: two Transformer layers, a GNMT layer, and the ResNet
    // backbone's heaviest convolution.
    let resnet = networks::resnet50();
    let mut layers = vec![
        networks::language_model("TF0").unwrap(),
        networks::language_model("TF1").unwrap(),
        networks::language_model("GNMT0").unwrap(),
    ];
    layers.push(resnet.layer("CB2a_2").unwrap().clone());

    let workloads: Vec<MappedDims> = layers
        .iter()
        .map(|l| l.shape().project(Dataflow::OutputStationary))
        .collect();

    let budget: u64 = 1 << 16;
    let model = AnalyticalModel;

    println!("workloads: TF0, TF1, GNMT0, CB2a_2 — {budget} MACs\n");
    println!(
        "{:>22} {:>26} {:>14} {:>14} {:>8}",
        "bandwidth budget", "recommended config", "total cycles", "BW estimate", "fits?"
    );
    let mut budgets: Vec<Option<f64>> = vec![None];
    budgets.extend([4096.0, 1024.0, 256.0, 64.0, 16.0].map(Some));
    for bw in budgets {
        let rec = recommend(&workloads, budget, 8, bw, &model);
        println!(
            "{:>22} {:>26} {:>14} {:>14.1} {:>8}",
            bw.map(|b| format!("{b} elem/cycle"))
                .unwrap_or_else(|| "unlimited".into()),
            rec.config.to_string(),
            rec.total_cycles,
            rec.peak_bandwidth,
            if rec.within_budget { "yes" } else { "NO" },
        );
    }

    println!();
    println!("the fundamental trade-off of the paper, as one decision procedure:");
    println!("rich interfaces justify scale-out; starved ones favour the monolithic array.");
}
