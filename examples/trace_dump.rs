//! Cycle-accurate trace export — the original tool's raw output.
//!
//! Runs a small convolution on an 8×8 weight-stationary array and writes
//! the SRAM read/write traces in SCALE-Sim's CSV format
//! (`cycle, addr, addr, …`), then prints the first few rows of each and
//! cross-checks the cycle count against the register-level golden model.
//!
//! Run: `cargo run --release --example trace_dump`

use scalesim::{ArrayShape, Dataflow, Layer, SimConfig, Simulator};
use scalesim_systolic::pe_grid::{run as golden_run, Matrix};
use scalesim_topology::ConvLayer;

fn main() {
    let conv = ConvLayer::new("demo", 8, 8, 3, 3, 2, 4, 1).expect("valid layer");
    let layer: Layer = conv.clone().into();

    let config = SimConfig::builder()
        .array(ArrayShape::square(8))
        .dataflow(Dataflow::WeightStationary)
        .build();
    let sim = Simulator::new(config);

    let mut reads = Vec::new();
    let mut writes = Vec::new();
    let report = sim
        .write_traces(&layer, &mut reads, &mut writes)
        .expect("in-memory writers cannot fail");

    println!(
        "layer {}: {} cycles over {} folds on an 8x8 WS array",
        conv.name(),
        report.total_cycles,
        report.folds
    );

    let reads = String::from_utf8(reads).unwrap();
    let writes = String::from_utf8(writes).unwrap();
    println!("\nsram_read.csv ({} rows), first 5:", reads.lines().count());
    for line in reads.lines().take(5) {
        println!("  {line}");
    }
    println!(
        "\nsram_write.csv ({} rows), first 5:",
        writes.lines().count()
    );
    for line in writes.lines().take(5) {
        println!("  {line}");
    }

    // Golden-model cross-check: build the layer's GEMM with real values and
    // run it through the register-level array.
    let shape = conv.shape();
    let a = Matrix::from_fn(shape.m as usize, shape.k as usize, |i, j| {
        (i as i64 - j as i64) % 5
    });
    let b = Matrix::from_fn(shape.k as usize, shape.n as usize, |i, j| {
        (2 * i as i64 + j as i64) % 7 - 3
    });
    let golden = golden_run(&a, &b, ArrayShape::square(8), Dataflow::WeightStationary);
    println!(
        "\ngolden model: {} cycles (engine said {}), product verified: {}",
        golden.cycles,
        report.total_cycles,
        golden.output == a.matmul(&b)
    );
    assert_eq!(golden.cycles, report.total_cycles);
}
