//! Integration tests for scale-sim-rs live in `tests/tests/`.
