//! Partitioned execution against the golden model: tile a GEMM's output
//! space the way the scale-out simulator does, run each tile through the
//! register-level PE grid with real values, stitch the results, and check
//! both the numerics (the stitched product equals the reference matmul)
//! and the timing (the slowest tile's golden cycles equal the simulator's
//! scale-out runtime).

use proptest::prelude::*;

use scalesim::{ArrayShape, Dataflow, PartitionGrid, SimConfig, Simulator};
use scalesim_systolic::pe_grid::{run as golden_run, Matrix};
use scalesim_topology::Layer;

fn submatrix(src: &Matrix, row0: usize, rows: usize, col0: usize, cols: usize) -> Matrix {
    Matrix::from_fn(rows, cols, |i, j| src[(row0 + i, col0 + j)])
}

fn check(m: usize, k: usize, n: usize, pr: u64, pc: u64, array: ArrayShape, df: Dataflow) {
    let a = Matrix::from_fn(m, k, |i, j| ((3 * i + 5 * j) % 11) as i64 - 5);
    let b = Matrix::from_fn(k, n, |i, j| ((7 * i + 2 * j) % 9) as i64 - 4);
    let reference = a.matmul(&b);

    // Tile exactly like Simulator::partition_tiles: ceiling shares.
    let chunk_m = (m as u64).div_ceil(pr) as usize;
    let chunk_n = (n as u64).div_ceil(pc) as usize;
    let mut stitched = Matrix::zeros(m, n);
    let mut slowest = 0u64;
    let mut m0 = 0usize;
    while m0 < m {
        let mm = chunk_m.min(m - m0);
        let mut n0 = 0usize;
        while n0 < n {
            let nn = chunk_n.min(n - n0);
            let tile_a = submatrix(&a, m0, mm, 0, k);
            let tile_b = submatrix(&b, 0, k, n0, nn);
            let golden = golden_run(&tile_a, &tile_b, array, df);
            for i in 0..mm {
                for j in 0..nn {
                    stitched[(m0 + i, n0 + j)] = golden.output[(i, j)];
                }
            }
            slowest = slowest.max(golden.cycles);
            n0 += chunk_n;
        }
        m0 += chunk_m;
    }
    assert_eq!(stitched, reference, "stitched partitioned product diverges");

    let config = SimConfig::builder()
        .array(array)
        .dataflow(df)
        .sram_kb(64, 64, 32)
        .build();
    let report = Simulator::new(config)
        .with_grid(PartitionGrid::new(pr, pc))
        .run_layer(&Layer::gemm("g", m as u64, k as u64, n as u64));
    assert_eq!(
        report.total_cycles, slowest,
        "simulator scale-out runtime diverges from slowest golden tile"
    );
}

#[test]
fn partitioned_golden_fixed_cases() {
    check(
        12,
        5,
        10,
        2,
        2,
        ArrayShape::new(4, 4),
        Dataflow::OutputStationary,
    );
    check(
        9,
        4,
        7,
        3,
        2,
        ArrayShape::new(2, 4),
        Dataflow::WeightStationary,
    );
    check(
        10,
        6,
        11,
        2,
        3,
        ArrayShape::new(4, 2),
        Dataflow::InputStationary,
    );
    // Grid larger than the workload: idle partitions drop out.
    check(
        3,
        3,
        3,
        4,
        4,
        ArrayShape::new(4, 4),
        Dataflow::OutputStationary,
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn partitioned_golden_random(
        m in 1usize..16,
        k in 1usize..10,
        n in 1usize..16,
        pr in 1u64..4,
        pc in 1u64..4,
        rows_pow in 1u32..3,
        cols_pow in 1u32..3,
        df_idx in 0usize..3,
    ) {
        check(
            m,
            k,
            n,
            pr,
            pc,
            ArrayShape::new(1 << rows_pow, 1 << cols_pow),
            Dataflow::ALL[df_idx],
        );
    }
}
