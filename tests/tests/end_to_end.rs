//! End-to-end runs of the full simulator over the built-in workloads.

use scalesim::{ArrayShape, Dataflow, PartitionGrid, SimConfig, Simulator};
use scalesim_topology::{networks, parse_topology_csv, topology_to_csv, Layer};

fn fast_config() -> SimConfig {
    SimConfig::builder()
        .array(ArrayShape::square(32))
        .sram_kb(128, 128, 64)
        .build()
}

#[test]
fn alexnet_full_run_is_sane() {
    let sim = Simulator::new(fast_config());
    let net = networks::alexnet();
    let report = sim.run_topology(&net);

    assert_eq!(report.layers().len(), 8);
    assert_eq!(report.total_macs(), net.total_macs());
    for layer in report.layers() {
        assert!(layer.total_cycles > 0);
        // DRAM traffic can never exceed SRAM traffic (every interface
        // transfer feeds/drains the SRAM).
        assert!(layer.dram.total_accesses() <= layer.sram.total());
        assert!(layer.energy.total() > 0.0);
        assert!(layer.compute_utilization > 0.0 && layer.compute_utilization <= 1.0);
    }
    // FC layers on OS dataflow are famously underutilized (S_R = 1).
    let fc = report.layer("FC7").unwrap();
    let conv = report.layer("Conv3").unwrap();
    assert!(fc.compute_utilization < conv.compute_utilization);
}

#[test]
fn yolo_tiny_all_dataflows_conserve_work() {
    let net = networks::yolo_tiny();
    let mut cycles = Vec::new();
    for df in Dataflow::ALL {
        let config = SimConfig {
            dataflow: df,
            ..fast_config()
        };
        let report = Simulator::new(config).run_topology(&net);
        assert_eq!(report.total_macs(), net.total_macs(), "{df:?}");
        cycles.push(report.total_cycles());
    }
    // Different dataflows genuinely schedule differently on these layers.
    assert!(cycles.iter().any(|&c| c != cycles[0]));
}

#[test]
fn language_models_report_reasonable_bandwidth() {
    // The compact half of Table IV; the giant GEMMs (GNMT2, DB0, TF0) run
    // in the release-mode figure harnesses, not in the test suite.
    let subset = networks::language_models()
        .filtered(|l| matches!(l.name(), "GNMT3" | "DB1" | "TF1" | "NCF0" | "NCF1"));
    let sim = Simulator::new(SimConfig::default());
    let report = sim.run_topology(&subset);
    assert_eq!(report.layers().len(), 5);
    // GEMMs have no window reuse: every unique A element must come over
    // the interface at least once.
    for (layer_report, layer) in report.layers().iter().zip(&subset) {
        let shape = layer.shape();
        assert!(
            layer_report.dram.reads_a >= shape.m * shape.k,
            "{} read too little",
            layer.name()
        );
        assert!(layer_report.required_bandwidth() > 0.0);
    }
}

#[test]
fn monolithic_equals_one_by_one_grid() {
    let layer = networks::language_model("NCF1").unwrap();
    let mono = Simulator::new(fast_config()).run_layer(&layer);
    let grid = Simulator::new(fast_config())
        .with_grid(PartitionGrid::new(1, 1))
        .run_layer(&layer);
    assert_eq!(mono, grid);
}

#[test]
fn csv_report_round_trips_row_count() {
    let sim = Simulator::new(fast_config());
    let report = sim.run_topology(&networks::alexnet());
    let csv = report.to_csv();
    assert_eq!(csv.lines().count(), 1 + report.layers().len());
    // Spot-check one row's cycle column.
    let row = csv.lines().nth(1).unwrap();
    let cols: Vec<&str> = row.split(',').collect();
    assert_eq!(cols[0], "Conv1");
    assert_eq!(
        cols[1].parse::<u64>().unwrap(),
        report.layers()[0].total_cycles
    );
}

#[test]
fn topology_files_survive_the_full_pipeline() {
    // Serialize a built-in network, parse it back, simulate both, compare.
    let original = networks::yolo_tiny();
    let parsed = parse_topology_csv(original.name(), &topology_to_csv(&original)).unwrap();
    let sim = Simulator::new(fast_config());
    let a = sim.run_topology(&original);
    let b = sim.run_topology(&parsed);
    assert_eq!(a, b);
}

#[test]
fn repeated_runs_are_deterministic_despite_thread_pool() {
    // Partition workers run on threads; aggregation must not depend on
    // completion order.
    let layer = networks::language_model("GNMT3").unwrap();
    let sim = Simulator::new(fast_config()).with_grid(PartitionGrid::new(4, 4));
    let first = sim.run_layer(&layer);
    for _ in 0..3 {
        assert_eq!(sim.run_layer(&layer), first);
    }
}

#[test]
fn trace_export_matches_simulated_horizon_for_all_dataflows() {
    let layer = Layer::gemm("t", 20, 9, 14);
    for df in Dataflow::ALL {
        let config = SimConfig {
            dataflow: df,
            ..fast_config()
        };
        let sim = Simulator::new(config);
        let mut reads = Vec::new();
        let mut writes = Vec::new();
        let report = sim.write_traces(&layer, &mut reads, &mut writes).unwrap();
        let writes = String::from_utf8(writes).unwrap();
        let last_write_cycle = writes
            .lines()
            .filter_map(|l| l.split(',').next()?.parse::<u64>().ok())
            .max()
            .unwrap();
        assert_eq!(last_write_cycle + 1, report.total_cycles, "{df:?}");
    }
}
