//! Property tests on the parallel sweep engine: results must be
//! indistinguishable from fresh single-shot simulations at any worker
//! count, and memoization accounting must be exact.

use proptest::prelude::*;

use scalesim::sweep::{
    AspectAxis, CsvSink, DataflowChoice, GridAxis, JsonLinesSink, SweepEngine, SweepPlan,
    SweepWorkload,
};
use scalesim::{ArrayShape, Dataflow, SimConfig, Simulator};
use scalesim_topology::{Layer, Topology};

/// A small randomized plan: one GEMM workload, power-of-two budgets in
/// the 2^6..2^8 range over the 8x8 floor, either aspect axis, any
/// dataflow choice (including per-layer auto selection).
fn plan(m: u64, k: u64, n: u64, budget_exp: u32, all_aspects: bool, df_idx: usize) -> SweepPlan {
    let layer = Layer::gemm("P", m, k, n);
    let dataflow = [
        DataflowChoice::Fixed(Dataflow::OutputStationary),
        DataflowChoice::Fixed(Dataflow::WeightStationary),
        DataflowChoice::Fixed(Dataflow::InputStationary),
        DataflowChoice::Auto,
    ][df_idx];
    SweepPlan {
        name: "prop".into(),
        base: SimConfig::builder()
            .array(ArrayShape::square(8))
            .sram_kb(16, 16, 8)
            .build(),
        workloads: vec![SweepWorkload {
            label: "P".into(),
            topology: Topology::from_layers("P", vec![layer]),
        }],
        budgets: vec![1 << budget_exp],
        min_dim: 8,
        grids: GridAxis::PowersOfTwo,
        aspects: if all_aspects {
            AspectAxis::All
        } else {
            AspectAxis::Squareish
        },
        dataflows: vec![dataflow],
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every point a parallel sweep returns is byte-identical (via the
    /// canonical CSV serialization) to a fresh, single-shot `Simulator`
    /// run of the same configuration — memoization and worker scheduling
    /// must never change a result.
    #[test]
    fn sweep_points_match_fresh_single_shot_runs(
        m in 1u64..48,
        k in 1u64..24,
        n in 1u64..48,
        budget_exp in 6u32..9,
        aspect_idx in 0usize..2,
        df_idx in 0usize..4,
        jobs in 1usize..5,
    ) {
        let plan = plan(m, k, n, budget_exp, aspect_idx == 1, df_idx);
        let outcome = SweepEngine::new(64).run(&plan, jobs).expect("plan is valid");
        prop_assert_eq!(outcome.results.len(), plan.expand().unwrap().len());
        for result in &outcome.results {
            let mut sim = Simulator::new(result.spec.config(&plan.base))
                .with_grid(result.spec.grid);
            if result.spec.dataflow == DataflowChoice::Auto {
                sim = sim.with_auto_dataflow();
            }
            let fresh = sim.run_topology(&plan.workloads[0].topology);
            prop_assert_eq!(
                fresh.to_csv(),
                result.report.to_csv(),
                "point {} {} {} diverged from a fresh run",
                result.spec.grid, result.spec.array, result.spec.dataflow
            );
        }
    }

    /// Cache-hit accounting is exact: duplicating every budget makes the
    /// duplicates hits (not simulations), and re-running the same plan on
    /// the same engine simulates nothing.
    #[test]
    fn repeated_plans_report_exact_cache_hits(
        m in 1u64..48,
        k in 1u64..24,
        n in 1u64..48,
        budget_exp in 6u32..9,
        jobs in 1usize..5,
    ) {
        let mut plan = plan(m, k, n, budget_exp, false, 0);
        let distinct = plan.expand().unwrap().len() as u64;
        plan.budgets = plan.budgets.repeat(2);

        // Exact-hit counting needs per-shard headroom: the engine's LRU is
        // sharded 16 ways with per-shard eviction, so 256 / 16 = 16 slots
        // per shard hold every distinct key even if all hash to one shard.
        let engine = SweepEngine::new(256);
        let first = engine.run(&plan, jobs).expect("plan is valid");
        prop_assert_eq!(first.results.len() as u64, 2 * distinct);
        prop_assert_eq!(first.simulations, distinct);
        prop_assert_eq!(first.cache_hits, distinct);

        let second = engine.run(&plan, jobs).expect("plan is valid");
        prop_assert_eq!(second.simulations, 0);
        prop_assert_eq!(second.cache_hits, 2 * distinct);

        // The duplicate halves are the same results, not re-simulations.
        for (a, b) in first.results.iter().zip(&first.results[distinct as usize..]) {
            prop_assert_eq!(a.report.to_csv(), b.report.to_csv());
        }
    }

    /// Streamed CSV and JSONL output is byte-for-byte identical at every
    /// worker count: the work-stealing executor may run layer tasks in any
    /// order on any thread, but the in-order emitter makes scheduling
    /// invisible in the serialized artifacts.
    #[test]
    fn streamed_output_is_byte_identical_at_any_worker_count(
        m in 1u64..48,
        k in 1u64..24,
        n in 1u64..48,
        budget_exp in 6u32..9,
        aspect_idx in 0usize..2,
        df_idx in 0usize..4,
        jobs in 2usize..9,
    ) {
        let plan = plan(m, k, n, budget_exp, aspect_idx == 1, df_idx);

        let stream = |jobs: usize| {
            // Fresh engine per run: an empty cache forces every point
            // through the executor rather than the memo table.
            let engine = SweepEngine::new(64);
            let mut csv = CsvSink::new(Vec::new());
            engine.run_streaming(&plan, jobs, &mut csv).expect("plan is valid");
            let mut jsonl = JsonLinesSink::new(Vec::new());
            SweepEngine::new(64)
                .run_streaming(&plan, jobs, &mut jsonl)
                .expect("plan is valid");
            (csv.into_inner(), jsonl.into_inner())
        };

        let (csv_serial, jsonl_serial) = stream(1);
        let (csv_parallel, jsonl_parallel) = stream(jobs);
        prop_assert_eq!(csv_serial, csv_parallel, "CSV diverged at jobs={}", jobs);
        prop_assert_eq!(jsonl_serial, jsonl_parallel, "JSONL diverged at jobs={}", jobs);
    }
}
