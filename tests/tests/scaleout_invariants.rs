//! Property tests on the scale-out machinery: tiling, conservation and
//! aggregation invariants across partition grids.

use proptest::prelude::*;

use scalesim::{ArrayShape, Dataflow, PartitionGrid, SimConfig, Simulator};
use scalesim_analytical::{scaleout_runtime, split_dims, AnalyticalModel, ScaleOutConfig};
use scalesim_topology::{GemmShape, Layer};

fn config(array_pow: u32) -> SimConfig {
    SimConfig::builder()
        .array(ArrayShape::square(1 << array_pow))
        .sram_kb(64, 64, 32)
        .build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// MACs and output writes are conserved under any partition grid, and
    /// the partitioned runtime never exceeds the monolithic runtime of the
    /// same per-partition array... while per-partition cycles match the
    /// slowest-partition rule.
    #[test]
    fn partitioning_conserves_work(
        m in 1u64..300,
        k in 1u64..40,
        n in 1u64..300,
        pr in 1u64..5,
        pc in 1u64..5,
        array_pow in 2u32..5,
        df_idx in 0usize..3,
    ) {
        let cfg = SimConfig {
            dataflow: Dataflow::ALL[df_idx],
            ..config(array_pow)
        };
        let layer = Layer::gemm("w", m, k, n);
        let grid = PartitionGrid::new(pr, pc);
        let report = Simulator::new(cfg).with_grid(grid).run_layer(&layer);

        prop_assert_eq!(report.mac_ops, m * k * n);
        prop_assert_eq!(
            report.total_cycles,
            *report.per_partition_cycles.iter().max().unwrap()
        );
        prop_assert!(report.active_partitions <= grid.count());
        prop_assert!(report.active_partitions >= 1);

        // Output writes across partitions cover the full output at least
        // once (WS/IS row folds rewrite, so >=).
        prop_assert!(report.sram.o_writes >= m * n);
    }

    /// Eq. 5/6: the analytical scale-out runtime equals the analytical
    /// scale-up runtime of the ceiling-share sub-workload.
    #[test]
    fn eq5_eq6_consistency(
        m in 1u64..500,
        k in 1u64..50,
        n in 1u64..500,
        pr in 1u64..8,
        pc in 1u64..8,
    ) {
        let dims = GemmShape::new(m, k, n).project(Dataflow::OutputStationary);
        let grid = PartitionGrid::new(pr, pc);
        let array = ArrayShape::new(8, 8);
        let cfg = ScaleOutConfig { grid, array };
        let model = AnalyticalModel;
        let split = split_dims(&dims, grid);
        prop_assert_eq!(
            scaleout_runtime(&dims, &cfg, &model),
            scalesim_analytical::exact_scaleup(&split, array)
        );
        // Splitting never enlarges a dimension.
        prop_assert!(split.spatial_rows <= dims.spatial_rows);
        prop_assert!(split.spatial_cols <= dims.spatial_cols);
        prop_assert_eq!(split.temporal, dims.temporal);
    }

    /// The cycle-accurate partitioned runtime matches the analytical Eq. 6
    /// prediction for GEMM workloads on even splits (the analytical model
    /// prices the ceiling share; with divisible dims they coincide).
    #[test]
    fn simulator_matches_eq6_on_divisible_splits(
        mb in 1u64..20,
        k in 1u64..30,
        nb in 1u64..20,
        pr in 1u64..4,
        pc in 1u64..4,
    ) {
        let m = mb * pr * 4;
        let n = nb * pc * 4;
        let layer = Layer::gemm("w", m, k, n);
        let grid = PartitionGrid::new(pr, pc);
        let cfg = config(2); // 4x4 arrays
        let report = Simulator::new(cfg).with_grid(grid).run_layer(&layer);
        let dims = GemmShape::new(m, k, n).project(Dataflow::OutputStationary);
        let model = AnalyticalModel;
        let predicted = scaleout_runtime(
            &dims,
            &ScaleOutConfig { grid, array: cfg.array },
            &model,
        );
        prop_assert_eq!(report.total_cycles, predicted);
    }
}

/// A grid larger than the workload leaves partitions idle but still
/// produces the correct result and counts them as provisioned for energy.
#[test]
fn idle_partitions_cost_idle_energy() {
    let layer = Layer::gemm("tiny", 4, 8, 4);
    let cfg = config(2);
    let busy = Simulator::new(cfg).run_layer(&layer);
    let wasteful = Simulator::new(cfg)
        .with_grid(PartitionGrid::new(8, 8))
        .run_layer(&layer);
    assert_eq!(busy.mac_ops, wasteful.mac_ops);
    // 64 provisioned partitions, only 2x2(?) active — idle energy dominates.
    assert!(wasteful.energy.idle > busy.energy.idle);
    assert!(wasteful.provisioned_macs() > busy.provisioned_macs());
}
