//! The paper's headline qualitative claims, asserted as tests.
//!
//! These are the "shapes" EXPERIMENTS.md records: each test pins one of the
//! evaluation section's observations so a regression in any model breaks
//! loudly.

use scalesim::{ArrayShape, Dataflow, EnergyModel, PartitionGrid, SimConfig, Simulator};
use scalesim_analytical::{
    best_scaleout, best_scaleup, eq1_unlimited, eq4_scaleup, exact_scaleup, AnalyticalModel,
};
use scalesim_topology::networks;

/// Sec. III-B: the equation hierarchy. The exact fold schedule equals
/// Eq. 1 when the array covers the workload (the partial fold only pays for
/// the extents it uses), equals Eq. 4 when the workload divides the array
/// exactly, and is upper-bounded by Eq. 4 everywhere (Eq. 4 prices every
/// fold, ragged or not, at the full array size).
#[test]
fn equation_hierarchy() {
    let dims = networks::language_model("TF1")
        .unwrap()
        .shape()
        .project(Dataflow::OutputStationary); // S_R=84, S_C=1024, T=4096
                                              // Oversized array: one partial fold, exact == Eq. 1; Eq. 4 still
                                              // charges the full 128x8192 fill/drain and must exceed both.
    let big = ArrayShape::new(128, 8192);
    assert_eq!(eq1_unlimited(&dims), exact_scaleup(&dims, big));
    assert!(eq4_scaleup(&dims, big) >= eq1_unlimited(&dims));
    // Exactly divisible: Eq. 4 == exact.
    let divisible = ArrayShape::new(84, 128);
    assert_eq!(
        eq4_scaleup(&dims, divisible),
        exact_scaleup(&dims, divisible)
    );
    // Ragged folding: Eq. 4 strictly upper bounds the exact schedule.
    let small = ArrayShape::new(60, 60);
    assert!(eq4_scaleup(&dims, small) > exact_scaleup(&dims, small));
}

/// Fig. 9: runtimes across aspect ratios span a widening range as the MAC
/// budget grows, and the monolithic configurations sit at the slow end of
/// the scale-out space.
#[test]
fn fig9_monolithic_is_never_the_best_point_for_tf0() {
    let dims = networks::language_model("TF0")
        .unwrap()
        .shape()
        .project(Dataflow::OutputStationary);
    let model = AnalyticalModel;
    for exp in [12u32, 14, 16] {
        let best_mono = best_scaleup(&dims, 1 << exp, 8, &model).cycles;
        let (best_cfg, best_out) = best_scaleout(&dims, 1 << exp, 8, &model);
        assert!(best_out <= best_mono, "2^{exp}");
        assert!(!best_cfg.is_monolithic(), "2^{exp}: TF0 wants partitions");
    }
}

/// Fig. 10: the monolithic-to-partitioned ratio is >= 1 everywhere and
/// grows with scale; language models reach order-tens at 2^16.
#[test]
fn fig10_ratio_grows_with_scale() {
    let model = AnalyticalModel;
    let mut max_ratio: f64 = 0.0;
    for layer in &networks::language_models() {
        let dims = layer.shape().project(Dataflow::OutputStationary);
        let mut prev = 0.0;
        for exp in [10u32, 13, 16] {
            let up = best_scaleup(&dims, 1 << exp, 8, &model).cycles as f64;
            let (_, out) = best_scaleout(&dims, 1 << exp, 8, &model);
            let ratio = up / out as f64;
            assert!(ratio >= 1.0 - 1e-12, "{} at 2^{exp}", layer.name());
            // Not strictly monotonic for every layer, but never collapsing:
            assert!(
                ratio >= prev * 0.5,
                "{} regressed hard at 2^{exp}",
                layer.name()
            );
            prev = ratio;
            max_ratio = max_ratio.max(ratio);
        }
    }
    assert!(
        max_ratio > 10.0,
        "expected order-tens peak ratio, got {max_ratio:.1}"
    );
}

/// Fig. 11: cycle-accurate sweet-spot trade-off — runtime falls
/// monotonically with partition count while the aggregate stall-free DRAM
/// bandwidth requirement rises.
#[test]
fn fig11_runtime_falls_bandwidth_rises() {
    let layer = networks::language_model("TF0").unwrap();
    let budget_exp = 12u32; // keep the test fast; the harness does 2^18
    let mut prev_cycles = u64::MAX;
    let mut prev_bw = 0.0;
    let mut p = 1u64;
    while (1u64 << budget_exp) / p >= 64 {
        let per = (1u64 << budget_exp) / p;
        let rows = 1u64 << (per.trailing_zeros().div_ceil(2));
        let array = ArrayShape::new(rows, per / rows);
        let grows = 1u64 << (p.trailing_zeros().div_ceil(2));
        let grid = PartitionGrid::new(grows, p / grows);
        let report = Simulator::new(SimConfig::builder().array(array).build())
            .with_grid(grid)
            .run_layer(&layer);
        assert!(
            report.total_cycles <= prev_cycles,
            "runtime should not rise at P={p}"
        );
        assert!(
            report.required_bandwidth() >= prev_bw * 0.9,
            "bandwidth should trend up at P={p}"
        );
        prev_cycles = report.total_cycles;
        prev_bw = report.required_bandwidth();
        p *= 4;
    }
    assert!(prev_bw > 0.0);
}

/// Fig. 12: at small MAC budgets the monolithic configuration is the
/// energy minimum; at large budgets the minimum moves to partitioned
/// configurations.
#[test]
fn fig12_energy_minimum_moves_right_with_scale() {
    let layer = networks::language_model("TF0").unwrap();
    let min_energy_partitions = |budget_exp: u32| -> u64 {
        let mut best = (1u64, f64::INFINITY);
        let mut p = 1u64;
        while (1u64 << budget_exp) / p >= 64 {
            let per = (1u64 << budget_exp) / p;
            let rows = 1u64 << (per.trailing_zeros().div_ceil(2));
            let array = ArrayShape::new(rows, per / rows);
            let grows = 1u64 << (p.trailing_zeros().div_ceil(2));
            let grid = PartitionGrid::new(grows, p / grows);
            let report = Simulator::new(SimConfig::builder().array(array).build())
                .with_grid(grid)
                .run_layer(&layer);
            if report.energy.total() < best.1 {
                best = (p, report.energy.total());
            }
            p *= 4;
        }
        best.0
    };
    let small = min_energy_partitions(8);
    let large = min_energy_partitions(14);
    assert!(
        small <= 4,
        "small budgets should favour few partitions, got {small}"
    );
    assert!(
        large >= small,
        "the energy minimum should move toward more partitions ({small} -> {large})"
    );
}

/// Sec. IV-A: the cost of partitioning is the loss of spatial reuse —
/// total DRAM read traffic grows with partition count for a conv layer.
#[test]
fn partitioning_loses_conv_reuse() {
    let resnet = networks::resnet50();
    let layer = resnet.layer("CB2a_2").unwrap().clone();
    let config = SimConfig::builder()
        .array(ArrayShape::square(16))
        .sram_kb(256, 256, 128)
        .build();
    let mono = Simulator::new(config).run_layer(&layer);
    let split16 = Simulator::new(config)
        .with_grid(PartitionGrid::new(4, 4))
        .run_layer(&layer);
    let reads = |r: &scalesim::LayerReport| r.dram.reads_a + r.dram.reads_b + r.dram.reads_o;
    assert!(reads(&split16) > reads(&mono));
}

/// The energy ordering DRAM >> SRAM >> MAC drives Fig. 12; verify the
/// breakdown surfaces it (DRAM dominates for a bandwidth-hungry config).
#[test]
fn dram_dominates_partitioned_energy() {
    let layer = networks::language_model("DB1").unwrap();
    let report = Simulator::new(SimConfig::builder().array(ArrayShape::square(8)).build())
        .with_grid(PartitionGrid::new(4, 4))
        .with_energy_model(EnergyModel::default())
        .run_layer(&layer);
    assert!(report.energy.dram_fraction() > 0.5);
}
