//! Equivalence properties for the run-compressed hot path: the
//! interval-compressed demand streams ([`fold_demand_runs`]) driven through
//! the run-native DRAM model must be indistinguishable — fold for fold,
//! count for count, stall for stall — from the element-granular legacy
//! path ([`fold_demands`] + `DramModel::fold`) on any workload, dataflow
//! and buffer sizing.
//!
//! The contract being checked (see `scalesim_systolic::demand`): the A
//! stream carries *real* addresses in first-use order and must match the
//! legacy stream element for element; the B and O streams use canonical
//! labels, so they must be a per-layer bijective relabeling of the legacy
//! addresses — which is exactly the property that makes every FIFO
//! hit/miss/eviction decision, and therefore every traffic figure,
//! identical. (`SramCounts` come from the compute-side `analyze`, which
//! the demand representation never touches, so they are covered by the
//! layer-cache equality test on whole `LayerReport`s in `scalesim`.)

use proptest::prelude::*;
use std::collections::HashMap;

use scalesim_memory::{
    AddrRuns, ConvAddressMap, DoubleBuffer, DramModel, GemmAddressMap, OperandBufferSpec,
    RegionOffsets, RunBuffer, StallModel,
};
use scalesim_systolic::{fold_demand_runs, fold_demands, ArrayShape, Dataflow};
use scalesim_topology::{ConvLayerBuilder, GemmShape};

fn spec(bytes: u64) -> OperandBufferSpec {
    OperandBufferSpec {
        size_bytes: bytes,
        word_bytes: 1,
    }
}

/// Runs both demand paths over the same workload and checks every
/// observable: per-fold traffic, the final DRAM summary, and the stall
/// model's verdict under a starved interface.
fn check_paths_agree(
    dims: &scalesim_topology::MappedDims,
    array: ArrayShape,
    map: &(impl scalesim_memory::AddressMap + ?Sized),
    bufs: (u64, u64, u64),
) -> Result<(), TestCaseError> {
    let mut legacy_dram = DramModel::new(spec(bufs.0), spec(bufs.1), spec(bufs.2));
    let mut runs_dram = DramModel::new(spec(bufs.0), spec(bufs.1), spec(bufs.2));
    let mut legacy_stall = StallModel::new(2.0);
    let mut runs_stall = StallModel::new(2.0);

    let legacy: Vec<_> = fold_demands(dims, array, map).collect();
    let runs: Vec<_> = fold_demand_runs(dims, array, map).collect();
    prop_assert_eq!(legacy.len(), runs.len(), "fold counts must agree");

    for (ld, rd) in legacy.into_iter().zip(runs) {
        prop_assert_eq!(ld.fold, rd.fold);
        let lt = legacy_dram.fold(ld.fold.duration, ld.a, ld.b, ld.o_spill, ld.o_writes);
        let rt = runs_dram.fold_runs(rd.fold.duration, &rd.a, &rd.b, &rd.o_spill, &rd.o_writes);
        prop_assert_eq!(lt, rt, "per-fold traffic must agree");
        legacy_stall.fold(lt.duration, lt.read_bytes, lt.write_bytes);
        runs_stall.fold(rt.duration, rt.read_bytes, rt.write_bytes);
    }
    prop_assert_eq!(legacy_dram.finish(), runs_dram.finish());
    prop_assert_eq!(legacy_stall.finish(), runs_stall.finish());
    Ok(())
}

/// A stream: exact element equality. B/O streams: one layer-wide
/// bijection between legacy addresses and canonical labels.
fn check_streams_are_faithful(
    dims: &scalesim_topology::MappedDims,
    array: ArrayShape,
    map: &(impl scalesim_memory::AddressMap + ?Sized),
) -> Result<(), TestCaseError> {
    let legacy: Vec<_> = fold_demands(dims, array, map).collect();
    let runs: Vec<_> = fold_demand_runs(dims, array, map).collect();
    prop_assert_eq!(legacy.len(), runs.len());

    // One bijection per operand buffer: B labels feed the filter FIFO,
    // while o_spill and o_writes share both the output FIFO and one label
    // space. (B and O label spaces are independent — a numeric collision
    // between them is harmless because the buffers are separate.)
    #[derive(Default)]
    struct Bijection {
        fwd: HashMap<u64, u64>,
        rev: HashMap<u64, u64>,
    }
    impl Bijection {
        fn check(&mut self, legacy: &[u64], runs: &AddrRuns) -> Result<(), TestCaseError> {
            prop_assert_eq!(legacy.len() as u64, runs.element_count());
            for (&addr, label) in legacy.iter().zip(runs.iter_elements()) {
                let seen = *self.fwd.entry(addr).or_insert(label);
                prop_assert_eq!(seen, label, "one address, two labels");
                let seen = *self.rev.entry(label).or_insert(addr);
                prop_assert_eq!(seen, addr, "one label, two addresses");
            }
            Ok(())
        }
    }
    let mut b_map = Bijection::default();
    let mut o_map = Bijection::default();

    for (ld, rd) in legacy.iter().zip(&runs) {
        // A: real addresses, first-use order, element for element.
        let a_elems: Vec<u64> = rd.a.iter_elements().collect();
        prop_assert_eq!(&ld.a, &a_elems, "A must carry real addresses");
        b_map.check(&ld.b, &rd.b)?;
        o_map.check(&ld.o_spill, &rd.o_spill)?;
        o_map.check(&ld.o_writes, &rd.o_writes)?;
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// GEMM, all dataflows: run path == element path on every observable.
    #[test]
    fn gemm_run_path_matches_element_path(
        m in 1u64..60,
        k in 1u64..32,
        n in 1u64..60,
        a_buf in 8u64..4096,
        b_buf in 8u64..4096,
        o_buf in 8u64..4096,
        df_idx in 0usize..3,
    ) {
        let shape = GemmShape::new(m, k, n);
        let dims = shape.project(Dataflow::ALL[df_idx]);
        let array = ArrayShape::new(8, 8);
        let map = GemmAddressMap::from_shape(shape, RegionOffsets::default());
        check_paths_agree(&dims, array, &map, (a_buf, b_buf, o_buf))?;
    }

    /// Convolution (window-overlap aliasing in the A stream), all
    /// dataflows and strides: run path == element path.
    #[test]
    fn conv_run_path_matches_element_path(
        ifmap in 4u64..12,
        filter in 1u64..4,
        channels in 1u64..5,
        filters in 1u64..8,
        stride in 1u64..3,
        a_buf in 8u64..2048,
        b_buf in 8u64..2048,
        o_buf in 8u64..2048,
        df_idx in 0usize..3,
    ) {
        prop_assume!(filter <= ifmap);
        let layer = ConvLayerBuilder::new("p")
            .ifmap(ifmap, ifmap)
            .filter(filter, filter)
            .channels(channels)
            .num_filters(filters)
            .stride(stride)
            .build()
            .unwrap();
        let dims = layer.shape().project(Dataflow::ALL[df_idx]);
        let array = ArrayShape::new(4, 4);
        let map = ConvAddressMap::new(&layer, RegionOffsets::default());
        check_paths_agree(&dims, array, &map, (a_buf, b_buf, o_buf))?;
    }

    /// The stream contract itself: A is the legacy stream verbatim; B/O
    /// are bijective relabelings (GEMM).
    #[test]
    fn gemm_streams_are_faithful(
        m in 1u64..40,
        k in 1u64..24,
        n in 1u64..40,
        df_idx in 0usize..3,
    ) {
        let shape = GemmShape::new(m, k, n);
        let dims = shape.project(Dataflow::ALL[df_idx]);
        let map = GemmAddressMap::from_shape(shape, RegionOffsets::default());
        check_streams_are_faithful(&dims, ArrayShape::new(8, 8), &map)?;
    }

    /// The stream contract for convolutions.
    #[test]
    fn conv_streams_are_faithful(
        ifmap in 4u64..10,
        filter in 1u64..4,
        channels in 1u64..4,
        filters in 1u64..6,
        stride in 1u64..3,
        df_idx in 0usize..3,
    ) {
        prop_assume!(filter <= ifmap);
        let layer = ConvLayerBuilder::new("p")
            .ifmap(ifmap, ifmap)
            .filter(filter, filter)
            .channels(channels)
            .num_filters(filters)
            .stride(stride)
            .build()
            .unwrap();
        let dims = layer.shape().project(Dataflow::ALL[df_idx]);
        let map = ConvAddressMap::new(&layer, RegionOffsets::default());
        check_streams_are_faithful(&dims, ArrayShape::new(4, 4), &map)?;
    }

    /// RunBuffer is the same FIFO double buffer as DoubleBuffer, for any
    /// epoch stream of runs and any capacity — including pathological
    /// capacities smaller than a single run.
    #[test]
    fn run_buffer_matches_double_buffer(
        epochs in prop::collection::vec(
            prop::collection::vec((0u64..400, 1u64..16), 1..12),
            1..10,
        ),
        capacity in 0u64..512,
    ) {
        let mut runs_buf = RunBuffer::new(capacity);
        let mut elems_buf = DoubleBuffer::new(capacity as usize);
        for epoch in &epochs {
            let mut demand = AddrRuns::new();
            let mut elems = Vec::new();
            for &(start, len) in epoch {
                demand.push(start, len);
                elems.extend(start..start + len);
            }
            let rs = runs_buf.epoch(&demand);
            let es = elems_buf.epoch(elems.iter().copied());
            prop_assert_eq!(rs, es, "epoch stats must agree");
            prop_assert_eq!(runs_buf.resident_count(), elems_buf.resident_count() as u64);
            for addr in (0..440).step_by(7) {
                prop_assert_eq!(runs_buf.contains(addr), elems_buf.contains(addr));
            }
        }
    }
}
