//! Property tests on the file formats: any valid workload or configuration
//! must survive serialize → parse unchanged (the tool's files are its API).

use proptest::prelude::*;

use scalesim::{parse_config, ArrayShape, Dataflow, RegionOffsets, SimConfig};
use scalesim_topology::{parse_topology_csv, topology_to_csv, ConvLayerBuilder, Layer, Topology};

fn arb_conv_layer() -> impl Strategy<Value = Layer> {
    (
        1u64..64, // ifmap_h
        1u64..64, // ifmap_w
        1u64..8,  // filter (clamped below)
        1u64..8,
        1u64..32, // channels
        1u64..64, // num_filters
        1u64..4,  // stride
        "[A-Za-z][A-Za-z0-9_]{0,12}",
    )
        .prop_map(|(ih, iw, fh, fw, c, nf, s, name)| {
            let layer = ConvLayerBuilder::new(name)
                .ifmap(ih.max(fh), iw.max(fw))
                .filter(fh, fw)
                .channels(c)
                .num_filters(nf)
                .stride(s)
                .build()
                .expect("constrained dims are valid");
            Layer::Conv(layer)
        })
}

fn arb_gemm_layer() -> impl Strategy<Value = Layer> {
    (
        1u64..10_000,
        1u64..10_000,
        1u64..10_000,
        "[A-Za-z][A-Za-z0-9_]{0,12}",
    )
        .prop_map(|(m, k, n, name)| Layer::gemm(name, m, k, n))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Topology CSV round trip for arbitrary mixed conv/GEMM workloads.
    #[test]
    fn topology_csv_round_trips(
        layers in prop::collection::vec(
            prop_oneof![arb_conv_layer(), arb_gemm_layer()],
            1..12,
        )
    ) {
        let topo = Topology::from_layers("arbitrary", layers);
        let text = topology_to_csv(&topo);
        let parsed = parse_topology_csv("arbitrary", &text).expect("own output parses");
        prop_assert_eq!(parsed, topo);
    }

    /// Config file round trip for arbitrary valid configurations.
    #[test]
    fn config_file_round_trips(
        rows in 1u64..1024,
        cols in 1u64..1024,
        ifmap_kb in 1u64..4096,
        filter_kb in 1u64..4096,
        ofmap_kb in 1u64..4096,
        word in 1u64..8,
        df_idx in 0usize..3,
        bw in prop::option::of(1u32..100_000),
    ) {
        let mut config = SimConfig::builder()
            .array(ArrayShape::new(rows, cols))
            .dataflow(Dataflow::ALL[df_idx])
            .sram_kb(ifmap_kb, filter_kb, ofmap_kb)
            .offsets(RegionOffsets::default())
            .word_bytes(word)
            .build();
        // Integral bandwidths only: the file format prints shortest-f64,
        // which round-trips exactly for integers.
        config.dram_bandwidth = bw.map(f64::from);
        let parsed = parse_config(&config.to_config_string()).expect("own output parses");
        prop_assert_eq!(parsed, config);
    }

    /// The CSV writer and parser agree on FC-as-conv encoding (Sec. II-E).
    #[test]
    fn fc_layers_round_trip(inputs in 1u64..10_000, outputs in 1u64..10_000) {
        let fc = ConvLayerBuilder::new("fc")
            .ifmap(1, 1)
            .filter(1, 1)
            .channels(inputs)
            .num_filters(outputs)
            .build()
            .unwrap();
        prop_assert!(fc.is_fully_connected());
        let topo = Topology::from_layers("fc_net", vec![Layer::Conv(fc)]);
        let parsed = parse_topology_csv("fc_net", &topology_to_csv(&topo)).unwrap();
        prop_assert_eq!(parsed, topo);
    }
}

/// The original tool's example config text (Table I keys, INI sections)
/// parses into the expected configuration.
#[test]
fn original_style_config_parses() {
    let text = "\
[general]
run_name = scale_example_run

[architecture_presets]
ArrayHeight:    32
ArrayWidth:     32
IfmapSramSz:    512
FilterSramSz:   512
OfmapSramSz:    256
IfmapOffset:    0
FilterOffset:   10000000
OfmapOffset:    20000000
Dataflow:       os
";
    let config = parse_config(text).unwrap();
    assert_eq!(config, SimConfig::default());
}
