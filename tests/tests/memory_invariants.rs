//! Property tests on the memory stack: demand/DRAM/buffer invariants that
//! must hold for any workload and buffer sizing.

use proptest::prelude::*;

use scalesim_memory::{
    ConvAddressMap, DramModel, GemmAddressMap, OperandBufferSpec, RegionOffsets,
};
use scalesim_systolic::{analyze, fold_demands, ArrayShape, Dataflow};
use scalesim_topology::{ConvLayerBuilder, GemmShape};

fn spec(bytes: u64) -> OperandBufferSpec {
    OperandBufferSpec {
        size_bytes: bytes,
        word_bytes: 1,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// DRAM reads are bounded below by the unique data (compulsory misses)
    /// and above by the SRAM read counts (you can never fetch more from
    /// DRAM than the array consumes from SRAM).
    #[test]
    fn dram_reads_bounded_by_unique_and_sram(
        m in 1u64..80,
        k in 1u64..40,
        n in 1u64..80,
        buf_bytes in 16u64..100_000,
        df_idx in 0usize..3,
    ) {
        let df = Dataflow::ALL[df_idx];
        let shape = GemmShape::new(m, k, n);
        let dims = shape.project(df);
        let array = ArrayShape::new(8, 8);
        let map = GemmAddressMap::from_shape(shape, RegionOffsets::default());

        let mut dram = DramModel::new(spec(buf_bytes), spec(buf_bytes), spec(buf_bytes));
        for d in fold_demands(&dims, array, &map) {
            dram.fold(d.fold.duration, d.a, d.b, d.o_spill, d.o_writes);
        }
        let summary = dram.finish();
        let report = analyze(&dims, array);

        // Compulsory lower bound: every unique element is fetched at least
        // once (GEMM has no aliasing).
        prop_assert!(summary.reads_a >= map_a_unique_touched(&dims, shape));
        prop_assert!(summary.reads_b >= shape.k * shape.n);
        // Upper bound: interface traffic <= SRAM traffic.
        prop_assert!(summary.reads_a <= report.sram.a_reads);
        prop_assert!(summary.reads_b <= report.sram.b_reads);
        prop_assert!(summary.reads_o <= report.sram.o_reads);
        prop_assert_eq!(summary.writes_o, report.sram.o_writes);
        // Bandwidth requirement is positive whenever there is traffic.
        if summary.total_bytes() > 0 {
            prop_assert!(summary.required_bandwidth() > 0.0);
        }
    }

    /// An unbounded buffer fetches exactly the unique working set, for both
    /// GEMM and conv addressing (conv reuse collapses the A traffic).
    #[test]
    fn unbounded_buffer_fetches_unique_set(
        ih in 4u64..20,
        fdim in 1u64..4,
        ch in 1u64..4,
        nf in 1u64..6,
        df_idx in 0usize..3,
    ) {
        prop_assume!(fdim <= ih);
        let layer = ConvLayerBuilder::new("c")
            .ifmap(ih, ih)
            .filter(fdim, fdim)
            .channels(ch)
            .num_filters(nf)
            .stride(1)
            .build()
            .unwrap();
        let df = Dataflow::ALL[df_idx];
        let dims = layer.shape().project(df);
        let array = ArrayShape::new(4, 4);
        let map = ConvAddressMap::new(&layer, RegionOffsets::default());

        let huge = spec(1 << 30);
        let mut dram = DramModel::new(huge, huge, huge);
        for d in fold_demands(&dims, array, &map) {
            dram.fold(d.fold.duration, d.a, d.b, d.o_spill, d.o_writes);
        }
        let summary = dram.finish();
        // With infinite capacity each unique address misses exactly once.
        prop_assert!(summary.reads_a <= layer.ifmap_elems());
        prop_assert_eq!(summary.reads_b, layer.filter_elems());
        prop_assert_eq!(summary.reads_o, 0);
    }

    /// Shrinking a buffer never reduces DRAM traffic (miss monotonicity).
    #[test]
    fn smaller_buffers_never_fetch_less(
        m in 8u64..60,
        k in 4u64..30,
        n in 8u64..60,
    ) {
        let shape = GemmShape::new(m, k, n);
        let dims = shape.project(Dataflow::OutputStationary);
        let array = ArrayShape::new(8, 8);
        let map = GemmAddressMap::from_shape(shape, RegionOffsets::default());

        let mut totals = Vec::new();
        for bytes in [1u64 << 20, 4096, 256] {
            let mut dram = DramModel::new(spec(bytes), spec(bytes), spec(bytes));
            for d in fold_demands(&dims, array, &map) {
                dram.fold(d.fold.duration, d.a, d.b, d.o_spill, d.o_writes);
            }
            totals.push(dram.finish().read_bytes());
        }
        prop_assert!(totals[0] <= totals[1]);
        prop_assert!(totals[1] <= totals[2]);
    }
}

/// For OS on a GEMM, every A element the workload touches is m*k (dense).
fn map_a_unique_touched(_dims: &scalesim_topology::MappedDims, shape: GemmShape) -> u64 {
    shape.m * shape.k
}

/// Conv reuse: stride-1 windows make DRAM ifmap traffic collapse to the
/// ifmap size while SRAM traffic stays at windows x elements.
#[test]
fn conv_reuse_collapses_dram_reads() {
    let layer = ConvLayerBuilder::new("c")
        .ifmap(18, 18)
        .filter(3, 3)
        .channels(4)
        .num_filters(8)
        .stride(1)
        .build()
        .unwrap();
    let dims = layer.shape().project(Dataflow::OutputStationary);
    let array = ArrayShape::new(16, 8);
    let map = ConvAddressMap::new(&layer, RegionOffsets::default());
    let huge = spec(1 << 30);
    let mut dram = DramModel::new(huge, huge, huge);
    for d in fold_demands(&dims, array, &map) {
        dram.fold(d.fold.duration, d.a, d.b, d.o_spill, d.o_writes);
    }
    let summary = dram.finish();
    let report = analyze(&dims, array);
    assert_eq!(summary.reads_a, layer.ifmap_elems());
    // SRAM sees the full 9x window amplification; DRAM does not.
    assert!(report.sram.a_reads > 5 * summary.reads_a);
}
