//! End-to-end tests of the analytical-guided explore pipeline.
//!
//! Two contracts are pinned here:
//!
//! * **Lower bound** — the stage-0 predictor equals the simulator's
//!   stall-free cycles exactly and never exceeds the stall-inclusive
//!   effective cycles, on the Table IV golden workloads and on random
//!   GEMMs (the property the pruning stage's soundness rests on).
//! * **Frontier recovery at scale** — on a 10^5-candidate plan, explore
//!   simulates a small fraction of the space yet reproduces the
//!   cycle-accurate Pareto frontier of the analytically-surviving region,
//!   with byte-identical output regardless of worker count.

use std::collections::HashMap;
use std::io;

use proptest::prelude::*;

use scalesim::sweep::{AspectAxis, DataflowChoice, PointSpec, SweepPlan, SweepSink, SweepWorkload};
use scalesim::{
    predict_cycles, ArrayShape, Dataflow, ExploreBudget, ExploreEngine, ExploreOptions,
    NetworkReport, PartitionGrid, SimConfig, Simulator,
};
use scalesim_analytical::{ErrorStats, Frontier};
use scalesim_topology::{networks, Layer, Topology};

/// Throwaway sink for exhaustive verification runs.
struct Discard;

impl SweepSink for Discard {
    fn point(&mut self, _spec: &PointSpec, _report: &NetworkReport) -> io::Result<()> {
        Ok(())
    }
}

/// The pruning stage's soundness contract on the paper's own workloads:
/// for Table IV layers across grids, aspect ratios and dataflows, the
/// analytical prediction equals the simulator's stall-free cycles and
/// lower-bounds the effective (stall-inclusive) cycles. The observed
/// error distribution (effective/predicted) is recorded so regressions in
/// the stall model show up as a quantile shift.
#[test]
fn analytical_lower_bound_holds_on_table_iv_golden_points() {
    use Dataflow::{InputStationary, OutputStationary, WeightStationary};
    let cases = [
        ("TF1", (1, 1), (32, 32), OutputStationary, 16.0),
        ("TF1", (2, 2), (16, 32), WeightStationary, 4.0),
        ("GNMT3", (1, 1), (32, 32), OutputStationary, 8.0),
        ("GNMT3", (4, 1), (16, 16), InputStationary, 4.0),
        ("NCF1", (1, 1), (64, 64), OutputStationary, 8.0),
        ("NCF1", (2, 2), (8, 8), WeightStationary, 2.0),
        ("NCF0", (1, 1), (32, 32), OutputStationary, 4.0),
        ("DB1", (2, 1), (32, 16), OutputStationary, 8.0),
    ];
    let mut ratios = Vec::new();
    for (name, (pr, pc), (rows, cols), dataflow, bandwidth) in cases {
        let layer = networks::language_model(name).expect("Table IV layer");
        let topology = Topology::from_layers(name, vec![layer]);
        let grid = PartitionGrid::new(pr, pc);
        let array = ArrayShape::new(rows, cols);
        let predicted = predict_cycles(&topology, array, grid, DataflowChoice::Fixed(dataflow));

        let config = SimConfig::builder()
            .array(array)
            .dataflow(dataflow)
            .sram_kb(64, 64, 32)
            .dram_bandwidth(bandwidth)
            .build();
        let report = Simulator::new(config)
            .with_grid(grid)
            .run_topology(&topology);

        assert_eq!(
            predicted,
            report.total_cycles(),
            "{name} {pr}x{pc}/{rows}x{cols} [{dataflow}]: predictor diverged from stall-free cycles"
        );
        assert!(
            predicted <= report.total_effective_cycles(),
            "{name} {pr}x{pc}/{rows}x{cols} [{dataflow}]: lower bound violated"
        );
        ratios.push(report.total_effective_cycles() as f64 / predicted as f64);
    }
    let stats = ErrorStats::from_ratios(ratios);
    eprintln!(
        "table-iv analytical error (effective/predicted): p50 {:.3}x p95 {:.3}x max {:.3}x over {} points",
        stats.p50, stats.p95, stats.max, stats.count
    );
    assert!(
        stats.p50 >= 1.0,
        "ratios below 1 would mean the bound broke"
    );
    assert!(stats.p50 <= stats.p95 && stats.p95 <= stats.max);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The same contract under random GEMM shapes (including ragged,
    /// non-multiple-of-array dims), random grids, arrays, dataflows
    /// (including per-layer auto selection) and bandwidths.
    #[test]
    fn analytical_prediction_is_a_lower_bound_on_random_gemms(
        m in 1u64..200,
        k in 1u64..96,
        n in 1u64..200,
        pr in 1u64..4,
        pc in 1u64..4,
        r_exp in 3u32..6,
        c_exp in 3u32..6,
        df_idx in 0usize..4,
        bandwidth in 1u64..32,
    ) {
        let topology = Topology::from_layers("g", vec![Layer::gemm("g", m, k, n)]);
        let grid = PartitionGrid::new(pr, pc);
        let array = ArrayShape::new(1 << r_exp, 1 << c_exp);
        let dataflow = [
            DataflowChoice::Fixed(Dataflow::OutputStationary),
            DataflowChoice::Fixed(Dataflow::WeightStationary),
            DataflowChoice::Fixed(Dataflow::InputStationary),
            DataflowChoice::Auto,
        ][df_idx];
        let predicted = predict_cycles(&topology, array, grid, dataflow);

        let mut builder = SimConfig::builder()
            .array(array)
            .sram_kb(16, 16, 8)
            .dram_bandwidth(bandwidth as f64);
        if let DataflowChoice::Fixed(df) = dataflow {
            builder = builder.dataflow(df);
        }
        let mut sim = Simulator::new(builder.build()).with_grid(grid);
        if dataflow == DataflowChoice::Auto {
            sim = sim.with_auto_dataflow();
        }
        let report = sim.run_topology(&topology);

        prop_assert_eq!(predicted, report.total_cycles());
        prop_assert!(predicted <= report.total_effective_cycles());
    }
}

/// A plan with >= 10^5 candidate points: 251 synthetic GEMM workloads
/// crossed with four MAC budgets, every power-of-two aspect ratio and all
/// four dataflow choices. Dims stay large enough (>= 150 per spatial
/// side) that no array in the budget range covers a workload outright —
/// so analytical runtimes keep separating candidates instead of
/// plateauing into ties.
fn huge_plan() -> SweepPlan {
    let mut plan = SweepPlan::new("explore-at-scale");
    plan.base.dram_bandwidth = Some(16.0);
    for i in 0..251u64 {
        let m = 150 + (i % 50) * 4;
        let n = 150 + ((i * 13) % 50) * 4;
        let k = 8 + (i % 7) * 4;
        let label = format!("G{i:03}");
        plan.workloads.push(SweepWorkload {
            label: label.clone(),
            topology: Topology::from_layers(&label, vec![Layer::gemm("l0", m, k, n)]),
        });
    }
    plan.budgets = vec![1 << 10, 1 << 11, 1 << 12, 1 << 13];
    plan.aspects = AspectAxis::All;
    plan.dataflows = vec![
        DataflowChoice::Fixed(Dataflow::OutputStationary),
        DataflowChoice::Fixed(Dataflow::WeightStationary),
        DataflowChoice::Fixed(Dataflow::InputStationary),
        DataflowChoice::Auto,
    ];
    plan
}

/// The acceptance scenario: on a >= 10^5-point plan, explore simulates at
/// most 10% of the candidates, recovers exactly the cycle-accurate Pareto
/// frontier an exhaustive sweep of the analytically-surviving region
/// produces, and emits byte-identical output at any worker count.
#[test]
fn explore_recovers_frontier_of_a_hundred_thousand_point_space() {
    let plan = huge_plan();
    let candidates = plan.points().expect("valid plan").len();
    assert!(
        candidates >= 100_000,
        "plan must span >= 10^5 points, got {candidates}"
    );

    let options = ExploreOptions {
        keep_within_pct: 2.0,
        budget: ExploreBudget::Unlimited,
        jobs: 4,
        progress: false,
    };
    let engine = ExploreEngine::new(8192);
    let outcome = engine.run(&plan, &options).expect("explore run");

    assert_eq!(outcome.candidates, candidates);
    assert_eq!(outcome.candidates, outcome.pruned + outcome.survivors);
    assert_eq!(outcome.simulated, outcome.survivors, "unlimited budget");
    assert!(
        outcome.simulated * 10 <= outcome.candidates,
        "simulated {} of {} candidates — pruning must remove >= 90%",
        outcome.simulated,
        outcome.candidates
    );
    eprintln!(
        "explore-at-scale: {} candidates -> {} simulated ({:.2}%), stage0 {:.2}s",
        outcome.candidates,
        outcome.simulated,
        100.0 * outcome.simulated as f64 / outcome.candidates as f64,
        outcome.stage_seconds.analytical,
    );

    // Soundness on everything measured.
    for point in &outcome.measured {
        assert!(
            point.predicted <= point.report.total_effective_cycles(),
            "lower bound violated at {:?}",
            point.spec
        );
    }
    assert!(outcome.error_stats.p50 >= 1.0);

    // Every workload keeps at least its own analytical best, so every
    // workload must come back with a nonempty measured frontier.
    let frontiers = outcome.frontiers();
    assert_eq!(frontiers.len(), plan.workloads.len());

    // Exhaustive sweep of the surviving region (recomputed independently;
    // simulation reuses the explore engine's caches, so this is cheap)
    // must yield the same per-workload frontier.
    let survivors = ExploreEngine::new(64)
        .prune(&plan, options.keep_within_pct)
        .expect("prune")
        .survivors;
    assert_eq!(survivors.len(), outcome.survivors);
    let exhaustive = engine
        .sweep_engine()
        .run_points(
            &plan,
            survivors.into_iter().map(|s| s.spec).collect(),
            4,
            &mut Discard,
        )
        .expect("exhaustive sweep of survivors");
    let mut by_workload: HashMap<&str, Vec<(u64, u64)>> = HashMap::new();
    for r in &exhaustive.results {
        by_workload
            .entry(r.spec.workload.as_str())
            .or_default()
            .push((r.spec.budget, r.report.total_effective_cycles()));
    }
    for (workload, points) in frontiers {
        let explored = Frontier::build(points.iter().map(|p| (p.spec.budget, p.measured())));
        let full = Frontier::build(by_workload.remove(workload).expect("workload measured"));
        assert_eq!(explored, full, "frontier diverged for {workload}");
    }

    // Byte-identical output across worker counts. The second run hits the
    // warm cache, but emission order is derived from the plan alone, so
    // any jobs-dependence in ordering would still surface here.
    let mut first = Vec::new();
    outcome.write_csv(&mut first).unwrap();
    let rerun = engine
        .run(&plan, &ExploreOptions { jobs: 1, ..options })
        .expect("rerun");
    let mut second = Vec::new();
    rerun.write_csv(&mut second).unwrap();
    assert_eq!(first, second, "explore output depends on worker count");
}
