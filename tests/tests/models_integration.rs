//! Cross-checks among the auxiliary models: occupancy timelines vs the
//! simulator, the sweep API vs raw runs, the pipeline vs serial execution,
//! roofline vs the stall model.

use scalesim::{
    run_partition_sweep, sweet_spot, ArrayShape, Dataflow, PartitionGrid, SimConfig, Simulator,
};
use scalesim_analytical::{achieved_intensity, compulsory_intensity, Roofline};
use scalesim_systolic::occupancy_histogram;
use scalesim_topology::{networks, Layer};

fn config() -> SimConfig {
    SimConfig::builder()
        .array(ArrayShape::square(16))
        .sram_kb(64, 64, 32)
        .build()
}

#[test]
fn occupancy_mean_equals_simulator_utilization() {
    let sim = Simulator::new(config());
    for layer in &networks::yolo_tiny() {
        let report = sim.run_layer(layer);
        let dims = layer.shape().project(Dataflow::OutputStationary);
        let hist = occupancy_histogram(&dims, config().array);
        assert_eq!(hist.total_cycles(), report.total_cycles, "{}", layer.name());
        assert_eq!(hist.total_activity(), report.mac_ops, "{}", layer.name());
        let util_from_hist = hist.mean() / config().array.macs() as f64;
        assert!(
            (util_from_hist - report.compute_utilization).abs() < 1e-9,
            "{}",
            layer.name()
        );
    }
}

#[test]
fn sweep_points_match_individual_runs() {
    let layer = networks::language_model("NCF1").unwrap();
    let base = config();
    let points = run_partition_sweep(&layer, &base, 1 << 10, 8);
    for p in &points {
        let manual = Simulator::new(SimConfig {
            array: p.array,
            ..base
        })
        .with_grid(p.grid)
        .run_layer(&layer);
        assert_eq!(&manual, &p.report);
    }
    // The sweet spot is a real point of the sweep.
    let spot = sweet_spot(&points).unwrap();
    assert!(points.iter().any(|p| p == spot));
}

#[test]
fn pipeline_stage_latencies_match_layer_reports() {
    let net = networks::alexnet();
    let base = config();
    let pipe = scalesim::run_pipeline(&net, &base, PartitionGrid::monolithic(), 3);
    let sim = Simulator::new(base);
    for stage in &pipe.stages {
        let expected: u64 = stage
            .layers
            .iter()
            .map(|name| sim.run_layer(net.layer(name).unwrap()).total_cycles)
            .sum();
        assert_eq!(stage.cycles, expected);
    }
    assert_eq!(
        pipe.fill_cycles,
        pipe.stages.iter().map(|s| s.cycles).sum::<u64>()
    );
}

#[test]
fn roofline_bound_is_respected_by_the_stall_model() {
    // The roofline is a lower bound on runtime; the fold-granular stall
    // model must never beat it by more than fill/drain slack.
    let layer = Layer::gemm("g", 256, 64, 256);
    let bandwidth = 4.0;
    let cfg = SimConfig {
        dram_bandwidth: Some(bandwidth),
        ..config()
    };
    let report = Simulator::new(cfg).run_layer(&layer);
    let stall = report.stall.unwrap();

    // Roofline with the *measured* intensity (MACs per byte the DRAM model
    // actually moved) lower-bounds the stalled runtime: the run can be no
    // faster than its compute ceiling or its own traffic over the bus.
    let roof = Roofline::new(config().array.macs() as f64, bandwidth);
    let measured_intensity = report.mac_ops as f64 / report.dram.total_bytes() as f64;
    let bound = roof.runtime_bound(report.mac_ops, measured_intensity);
    assert!(
        stall.stalled_cycles as f64 >= 0.95 * bound,
        "stalled {} vs roofline bound {bound}",
        stall.stalled_cycles
    );

    // The first-order analytical intensity is deliberately conservative
    // (it charges every fold's tiles as fresh): it must not exceed the
    // measured one, and both sit below the compulsory ceiling.
    let dims = layer.shape().project(Dataflow::OutputStationary);
    let analytical = achieved_intensity(&dims, config().array);
    assert!(analytical <= measured_intensity * 1.05);
    assert!(analytical <= compulsory_intensity(layer.shape()) * 1.05);
    assert!(measured_intensity <= compulsory_intensity(layer.shape()) * 1.05);
}

#[test]
fn transformer_generator_runs_end_to_end() {
    let net = networks::transformer_encoder("tiny_tf", 64, 128, 256, 2);
    let report = Simulator::new(config()).run_topology(&net);
    assert_eq!(report.layers().len(), 12);
    assert_eq!(report.total_macs(), net.total_macs());
}

#[test]
fn mlp_generator_with_batch_runs_end_to_end() {
    let net = networks::mlp("m", 16, &[256, 512, 128, 10]);
    let auto = Simulator::new(config()).with_auto_dataflow();
    let report = auto.run_topology(&net);
    assert_eq!(report.layers().len(), 3);
    assert!(report.total_cycles() > 0);
}
