//! End-to-end numerical validation of the convolution lowering: the GEMM
//! the simulator schedules (Table III / Sec. III-A) must compute the same
//! values as a direct convolution loop, all the way through the
//! register-level array — tying the address map's coordinate convention to
//! actual arithmetic.

use proptest::prelude::*;

use scalesim_systolic::pe_grid::{run, Matrix};
use scalesim_systolic::{ArrayShape, Dataflow};
use scalesim_topology::{ConvLayer, ConvLayerBuilder};

/// Direct convolution: `out[oh][ow][f] = Σ_{kh,kw,c} in[...]·w[f][...]`.
fn direct_conv(layer: &ConvLayer, ifmap: &[i64], filters: &[i64]) -> Vec<i64> {
    let (ih, iw) = (layer.ifmap_h() as usize, layer.ifmap_w() as usize);
    let (fh, fw) = (layer.filter_h() as usize, layer.filter_w() as usize);
    let ch = layer.channels() as usize;
    let nf = layer.num_filters() as usize;
    let (sh, sw) = (layer.stride_h() as usize, layer.stride_w() as usize);
    let (oh_n, ow_n) = (layer.ofmap_h() as usize, layer.ofmap_w() as usize);
    let mut out = vec![0i64; oh_n * ow_n * nf];
    for oh in 0..oh_n {
        for ow in 0..ow_n {
            for f in 0..nf {
                let mut acc = 0;
                for kh in 0..fh {
                    for kw in 0..fw {
                        for c in 0..ch {
                            let iv = ifmap[((oh * sh + kh) * iw + (ow * sw + kw)) * ch + c];
                            let wv = filters[f * (fh * fw * ch) + (kh * fw + kw) * ch + c];
                            acc += iv * wv;
                        }
                    }
                }
                out[(oh * ow_n + ow) * nf + f] = acc;
            }
        }
    }
    let _ = ih; // extents used implicitly through indexing
    out
}

/// Builds the im2col operand matrices with exactly the coordinate
/// convention the simulator's `ConvAddressMap` uses: `A[m][k]` is window
/// element `k` of output pixel `m`; `B[k][n]` is element `k` of filter `n`.
fn im2col(layer: &ConvLayer, ifmap: &[i64], filters: &[i64]) -> (Matrix, Matrix) {
    let shape = layer.shape();
    let iw = layer.ifmap_w() as usize;
    let ch = layer.channels() as usize;
    let fw = layer.filter_w() as usize;
    let ow_n = layer.ofmap_w() as usize;
    let (sh, sw) = (layer.stride_h() as usize, layer.stride_w() as usize);
    let a = Matrix::from_fn(shape.m as usize, shape.k as usize, |m, k| {
        let (oh, ow) = (m / ow_n, m % ow_n);
        let kh = k / (fw * ch);
        let rem = k % (fw * ch);
        let (kw, c) = (rem / ch, rem % ch);
        ifmap[((oh * sh + kh) * iw + (ow * sw + kw)) * ch + c]
    });
    let b = Matrix::from_fn(shape.k as usize, shape.n as usize, |k, n| {
        filters[n * shape.k as usize + k]
    });
    (a, b)
}

fn check(layer: &ConvLayer, array: ArrayShape, df: Dataflow, seed: i64) {
    let ifmap: Vec<i64> = (0..layer.ifmap_elems())
        .map(|i| ((i as i64 * 7 + seed) % 11) - 5)
        .collect();
    let filters: Vec<i64> = (0..layer.filter_elems())
        .map(|i| ((i as i64 * 13 - seed) % 9) - 4)
        .collect();
    let reference = direct_conv(layer, &ifmap, &filters);
    let (a, b) = im2col(layer, &ifmap, &filters);
    let golden = run(&a, &b, array, df);
    let nf = layer.num_filters() as usize;
    for m in 0..layer.ofmap_pixels() as usize {
        for f in 0..nf {
            assert_eq!(
                golden.output[(m, f)],
                reference[m * nf + f],
                "pixel {m}, filter {f}, {df:?}"
            );
        }
    }
}

#[test]
fn conv_through_the_array_equals_direct_convolution() {
    let layer = ConvLayer::new("c", 8, 8, 3, 3, 2, 4, 1).unwrap();
    for df in Dataflow::ALL {
        check(&layer, ArrayShape::new(4, 4), df, 3);
    }
}

#[test]
fn strided_conv_through_the_array() {
    let layer = ConvLayer::new("s", 9, 9, 3, 3, 1, 3, 2).unwrap();
    check(&layer, ArrayShape::new(4, 2), Dataflow::OutputStationary, 7);
    check(&layer, ArrayShape::new(2, 4), Dataflow::WeightStationary, 7);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn random_convs_compute_correctly(
        ih in 3u64..10,
        fdim in 1u64..4,
        ch in 1u64..3,
        nf in 1u64..5,
        stride in 1u64..3,
        df_idx in 0usize..3,
        seed in -20i64..20,
    ) {
        prop_assume!(fdim <= ih);
        let layer = ConvLayerBuilder::new("p")
            .ifmap(ih, ih)
            .filter(fdim, fdim)
            .channels(ch)
            .num_filters(nf)
            .stride(stride)
            .build()
            .unwrap();
        check(&layer, ArrayShape::new(4, 4), Dataflow::ALL[df_idx], seed);
    }
}
