//! Differential properties for the data-oriented (SoA) hot-path kernels.
//!
//! Every optimized kernel in `scalesim-memory` keeps its original scalar
//! implementation as a twin (`scalesim_memory::scalar`, compiled under the
//! `scalar-twins` feature). This suite drives both sides with identical
//! inputs — random and adversarial — and asserts observational equality:
//!
//! * `IntervalSet` (parallel sorted vectors, binary probes, fused
//!   insert-with-gaps) ≡ `ScalarIntervalSet` (the original `BTreeMap`).
//! * `AddrRuns::extend_runs` (bulk memcpy append) ≡ per-run push loop.
//! * `RunBuffer` (span-batched FIFO) ≡ `DoubleBuffer` (element-granular
//!   FIFO) on real OS/WS/IS demand streams from conv and GEMM layers.
//! * `ReuseProfile::from_runs` (batched per-span Fenwick updates) ≡
//!   `ReuseProfile::from_demands` (element walk) — `from_demands` is the
//!   scalar twin of the run-granular profile.
//! * The production fold loop (arena-pooled buffers, lending demand
//!   iterator, deferred output installs) performs **zero heap allocation**
//!   once warm, measured with a counting global allocator.

use proptest::prelude::*;

use scalesim_memory::scalar::{extend_runs_scalar, ScalarIntervalSet};
use scalesim_memory::{
    AddrRuns, BufferPool, ConvAddressMap, DoubleBuffer, DramModel, GemmAddressMap, IntervalSet,
    OperandBufferSpec, RegionOffsets, ReuseProfile, RunBuffer,
};
use scalesim_systolic::{
    fold_demand_runs, fold_demand_runs_in, ArrayShape, Dataflow, FoldDemandRuns,
};
use scalesim_topology::{ConvLayerBuilder, GemmShape};

// ---------------------------------------------------------------------------
// Counting allocator: thread-local so parallel test threads don't interfere.
// ---------------------------------------------------------------------------

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    static ALLOC_COUNT: Cell<u64> = const { Cell::new(0) };
}

struct CountingAllocator;

// SAFETY: delegates every operation to `System`; the counter is a plain
// thread-local `Cell<u64>` with const initialization (no lazy allocation,
// no destructor), so the bookkeeping itself never allocates.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_COUNT.with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A growth may move or extend the block: either way it is heap
        // traffic the steady-state fold loop must not produce.
        ALLOC_COUNT.with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations_on_this_thread() -> u64 {
    ALLOC_COUNT.with(|c| c.get())
}

// ---------------------------------------------------------------------------
// IntervalSet ≡ ScalarIntervalSet
// ---------------------------------------------------------------------------

/// One mutation step of the differential interval-set walk.
#[derive(Debug, Clone)]
enum SetOp {
    Insert(u64, u64),
    InsertWithGaps(u64, u64),
    RemoveCoveredAt(u64, u64),
}

fn arb_set_op(max_addr: u64) -> impl Strategy<Value = SetOp> {
    let span = move || (0..max_addr, 0u64..24);
    prop_oneof![
        span().prop_map(|(s, l)| SetOp::Insert(s, s + l)),
        span().prop_map(|(s, l)| SetOp::InsertWithGaps(s, s + l)),
        span().prop_map(|(s, l)| SetOp::RemoveCoveredAt(s, l)),
    ]
}

/// Applies `op` to both sets and asserts every observable agrees.
fn step_both(
    soa: &mut IntervalSet,
    scalar: &mut ScalarIntervalSet,
    op: &SetOp,
    probe_to: u64,
) -> Result<(), TestCaseError> {
    match *op {
        SetOp::Insert(s, e) => {
            soa.insert(s, e);
            scalar.insert(s, e);
        }
        SetOp::InsertWithGaps(s, e) => {
            let mut soa_gaps = Vec::new();
            let mut scalar_gaps = Vec::new();
            soa.insert_with_gaps(s, e, |a, b| soa_gaps.push((a, b)));
            scalar.insert_with_gaps(s, e, |a, b| scalar_gaps.push((a, b)));
            prop_assert_eq!(soa_gaps, scalar_gaps, "gap enumeration diverged");
        }
        SetOp::RemoveCoveredAt(s, l) => {
            // Only remove what is actually covered by one span (the
            // documented precondition), trimmed identically on both sides.
            if let Some((_, span_end)) = soa.span_at(s) {
                let e = (s + l).min(span_end);
                if s < e {
                    soa.remove_covered(s, e);
                    scalar.remove_covered(s, e);
                }
            }
        }
    }
    prop_assert_eq!(soa.len(), scalar.len());
    prop_assert_eq!(soa.span_count(), scalar.span_count());
    prop_assert_eq!(
        soa.iter_spans().collect::<Vec<_>>(),
        scalar.iter_spans().collect::<Vec<_>>()
    );
    for probe in (0..probe_to).step_by(3) {
        prop_assert_eq!(
            soa.contains(probe),
            scalar.contains(probe),
            "contains {}",
            probe
        );
        prop_assert_eq!(
            soa.span_at(probe),
            scalar.span_at(probe),
            "span_at {}",
            probe
        );
        prop_assert_eq!(
            soa.first_start_at_or_after(probe),
            scalar.first_start_at_or_after(probe),
            "first_start_at_or_after {}",
            probe
        );
        prop_assert_eq!(
            soa.len_at_or_above(probe),
            scalar.len_at_or_above(probe),
            "len_at_or_above {}",
            probe
        );
    }
    let mut soa_gaps = Vec::new();
    let mut scalar_gaps = Vec::new();
    soa.for_gaps(0, probe_to, |a, b| soa_gaps.push((a, b)));
    scalar.for_gaps(0, probe_to, |a, b| scalar_gaps.push((a, b)));
    prop_assert_eq!(soa_gaps, scalar_gaps, "for_gaps diverged");
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random op sequences over a dense address range: maximal span
    /// overlap, adjacency, splits and full removals.
    #[test]
    fn interval_set_matches_scalar_twin(
        ops in prop::collection::vec(arb_set_op(180), 1..60),
    ) {
        let mut soa = IntervalSet::new();
        let mut scalar = ScalarIntervalSet::new();
        for op in &ops {
            step_both(&mut soa, &mut scalar, op, 220)?;
        }
    }

    /// The same walk at the u32 boundary: spans straddling `u32::MAX`
    /// exercise the index arithmetic the SoA probes rely on.
    #[test]
    fn interval_set_matches_scalar_twin_at_u32_boundary(
        ops in prop::collection::vec(arb_set_op(120), 1..40),
    ) {
        const BASE: u64 = u32::MAX as u64 - 60;
        let shift = |op: &SetOp| match *op {
            SetOp::Insert(s, e) => SetOp::Insert(BASE + s, BASE + e),
            SetOp::InsertWithGaps(s, e) => SetOp::InsertWithGaps(BASE + s, BASE + e),
            SetOp::RemoveCoveredAt(s, l) => SetOp::RemoveCoveredAt(BASE + s, l),
        };
        let mut soa = IntervalSet::new();
        let mut scalar = ScalarIntervalSet::new();
        for op in &ops {
            // Probing the full shifted range would be slow; spot-check the
            // spans themselves instead of a probe sweep.
            match shift(op) {
                SetOp::Insert(s, e) => {
                    soa.insert(s, e);
                    scalar.insert(s, e);
                }
                SetOp::InsertWithGaps(s, e) => {
                    let mut a_gaps = Vec::new();
                    let mut b_gaps = Vec::new();
                    soa.insert_with_gaps(s, e, |a, b| a_gaps.push((a, b)));
                    scalar.insert_with_gaps(s, e, |a, b| b_gaps.push((a, b)));
                    prop_assert_eq!(a_gaps, b_gaps);
                }
                SetOp::RemoveCoveredAt(s, l) => {
                    if let Some((_, span_end)) = soa.span_at(s) {
                        let e = (s + l).min(span_end);
                        if s < e {
                            soa.remove_covered(s, e);
                            scalar.remove_covered(s, e);
                        }
                    }
                }
            }
            prop_assert_eq!(soa.len(), scalar.len());
            prop_assert_eq!(
                soa.iter_spans().collect::<Vec<_>>(),
                scalar.iter_spans().collect::<Vec<_>>()
            );
        }
    }

    /// Bulk `extend_runs` ≡ the per-run push loop, including the
    /// boundary-coalescing case and empty streams on either side.
    #[test]
    fn extend_runs_matches_scalar_twin(
        left in prop::collection::vec((0u64..300, 0u64..12), 0..12),
        right in prop::collection::vec((0u64..300, 0u64..12), 0..12),
        force_adjacent in (0u64..2).prop_map(|b| b == 1),
    ) {
        let build = |spans: &[(u64, u64)]| {
            let mut runs = AddrRuns::new();
            for &(s, l) in spans {
                runs.push(s, l);
            }
            runs
        };
        let base = build(&left);
        let mut other = build(&right);
        if force_adjacent {
            // Adversarial: make `other` start exactly where `base` ends, so
            // the boundary pair must coalesce.
            if let (Some(last), false) = (
                (!base.is_empty()).then(|| base.run(base.run_count() - 1)),
                other.is_empty(),
            ) {
                let mut adjacent = AddrRuns::new();
                adjacent.push(last.end(), 5);
                adjacent.extend_runs(&other);
                other = adjacent;
            }
        }
        let mut bulk = base.clone();
        bulk.extend_runs(&other);
        let mut scalar = base.clone();
        extend_runs_scalar(&mut scalar, &other);
        prop_assert_eq!(&bulk, &scalar, "streams diverged");
        prop_assert_eq!(bulk.element_count(), scalar.element_count());
        prop_assert_eq!(
            bulk.iter_elements().collect::<Vec<_>>(),
            scalar.iter_elements().collect::<Vec<_>>()
        );
    }

    /// Run-granular Mattson profile ≡ the element-walk twin on random
    /// overlapping interval streams.
    #[test]
    fn reuse_from_runs_matches_element_twin(
        spans in prop::collection::vec((0u64..80, 1u64..30), 1..20),
    ) {
        let mut runs = AddrRuns::new();
        for &(s, l) in &spans {
            runs.push(s, l);
        }
        let by_runs = ReuseProfile::from_runs(&runs);
        let by_elems = ReuseProfile::from_demands(runs.iter_elements());
        prop_assert_eq!(by_runs, by_elems);
    }
}

/// Deterministic adversarial span sets: exact adjacency chains, zero-length
/// inserts, nested overlaps, and total coverage collapse.
#[test]
fn interval_set_adversarial_cases_match_scalar_twin() {
    let cases: &[&[SetOp]] = &[
        // Zero-length operations are no-ops on both sides.
        &[
            SetOp::Insert(5, 5),
            SetOp::InsertWithGaps(7, 7),
            SetOp::Insert(5, 6),
            SetOp::RemoveCoveredAt(5, 0),
        ],
        // Adjacency chain collapsing to one span, built in reverse.
        &[
            SetOp::Insert(40, 50),
            SetOp::Insert(30, 40),
            SetOp::Insert(20, 30),
            SetOp::Insert(10, 20),
            SetOp::InsertWithGaps(0, 60),
        ],
        // A comb of single-address spans bridged by one big insert.
        &[
            SetOp::Insert(0, 1),
            SetOp::Insert(2, 3),
            SetOp::Insert(4, 5),
            SetOp::Insert(6, 7),
            SetOp::Insert(8, 9),
            SetOp::InsertWithGaps(0, 9),
        ],
        // Remove the middle of a span, then re-bridge it.
        &[
            SetOp::Insert(0, 100),
            SetOp::RemoveCoveredAt(30, 40),
            SetOp::InsertWithGaps(20, 80),
            SetOp::RemoveCoveredAt(0, 100),
        ],
    ];
    for (i, ops) in cases.iter().enumerate() {
        let mut soa = IntervalSet::new();
        let mut scalar = ScalarIntervalSet::new();
        for op in *ops {
            step_both(&mut soa, &mut scalar, op, 110).unwrap_or_else(|e| {
                panic!("case {i}, op {op:?}: {e:?}");
            });
        }
    }
}

// ---------------------------------------------------------------------------
// RunBuffer ≡ DoubleBuffer on real demand streams
// ---------------------------------------------------------------------------

/// Feeds each operand stream of every fold through a RunBuffer and its
/// element-granular twin, asserting identical stats and residency per fold.
fn check_buffers_match_on(
    dims: &scalesim_topology::MappedDims,
    array: ArrayShape,
    map: &(impl scalesim_memory::AddressMap + ?Sized),
    capacity: u64,
) {
    // One buffer pair per operand stream, as in the DRAM model.
    let mut pairs: Vec<(RunBuffer, DoubleBuffer)> = (0..4)
        .map(|_| {
            (
                RunBuffer::new(capacity),
                DoubleBuffer::new(capacity as usize),
            )
        })
        .collect();
    for (fold_no, demand) in fold_demand_runs(dims, array, map).enumerate() {
        let streams = [&demand.a, &demand.b, &demand.o_spill, &demand.o_writes];
        for (which, (runs_buf, elems_buf)) in streams.iter().zip(pairs.iter_mut()) {
            let mut misses = AddrRuns::new();
            let rs = runs_buf.epoch_with_misses(which, &mut misses);
            let (es, elem_misses) = elems_buf.epoch_with_misses(which.iter_elements());
            assert_eq!(rs, es, "fold {fold_no}: epoch stats diverged");
            assert_eq!(
                misses.iter_elements().collect::<Vec<_>>(),
                elem_misses,
                "fold {fold_no}: miss order diverged"
            );
            assert_eq!(runs_buf.resident_count(), elems_buf.resident_count() as u64);
        }
        // The O-write stream also exercises the install (write-allocate)
        // path, as `DramModel::fold_runs` uses it.
        let (runs_buf, elems_buf) = &mut pairs[3];
        let rb_ev = runs_buf.install(&demand.o_writes);
        let mut db_ev = 0;
        for addr in demand.o_writes.iter_elements() {
            db_ev += elems_buf.install(addr);
        }
        assert_eq!(rb_ev, db_ev, "fold {fold_no}: install evictions diverged");
        assert_eq!(runs_buf.resident_count(), elems_buf.resident_count() as u64);
    }
}

#[test]
fn run_buffer_matches_double_buffer_gemm_all_dataflows() {
    let shape = GemmShape::new(24, 18, 20);
    let map = GemmAddressMap::from_shape(shape, RegionOffsets::default());
    for df in Dataflow::ALL {
        let dims = shape.project(df);
        for capacity in [0u64, 7, 64, 100_000] {
            check_buffers_match_on(&dims, ArrayShape::new(8, 4), &map, capacity);
        }
    }
}

#[test]
fn run_buffer_matches_double_buffer_conv_all_dataflows() {
    let layer = ConvLayerBuilder::new("t")
        .ifmap(12, 12)
        .filter(3, 3)
        .channels(3)
        .num_filters(4)
        .stride(1)
        .build()
        .unwrap();
    let map = ConvAddressMap::new(&layer, RegionOffsets::default());
    for df in Dataflow::ALL {
        let dims = layer.shape().project(df);
        for capacity in [5u64, 33, 50_000] {
            check_buffers_match_on(&dims, ArrayShape::new(4, 8), &map, capacity);
        }
    }
}

// ---------------------------------------------------------------------------
// Deferred O-install equivalence
// ---------------------------------------------------------------------------

/// `DramModel::fold_runs` defers OFMAP installs until a spill probes the
/// buffer. Interleave spill-free and spilling folds (including back-to-back
/// spills and a trailing deferred tail) and check the deferred model
/// against an *eager* element-granular OFMAP buffer that installs every
/// write the moment it is produced.
#[test]
fn deferred_o_installs_match_eager_element_path() {
    let spec = |bytes: u64| OperandBufferSpec {
        size_bytes: bytes,
        word_bytes: 1,
    };
    // Tiny OFMAP buffer so installs evict aggressively.
    let mut deferred = DramModel::new(spec(1024), spec(1024), spec(24));
    let mut eager_o = DoubleBuffer::new(24);
    for step in 0..12u64 {
        let writes: Vec<u64> = (step * 10..step * 10 + 10).collect();
        // Two of every three folds spill a window reaching back two folds;
        // consecutive spills exercise the flushed-then-empty pending state.
        let spill: Vec<u64> = if step % 3 != 0 && step > 0 {
            ((step * 10).saturating_sub(15)..step * 10 + 5).collect()
        } else {
            Vec::new()
        };
        let eager_stats = eager_o.epoch(spill.iter().copied());
        for &addr in &writes {
            eager_o.install(addr);
        }
        let a_runs: AddrRuns = (0..30u64).collect();
        let spill_runs: AddrRuns = spill.into_iter().collect();
        let write_runs: AddrRuns = writes.into_iter().collect();
        let traffic = deferred.fold_runs(7, &a_runs, &AddrRuns::new(), &spill_runs, &write_runs);
        assert_eq!(
            traffic.o_spill_misses, eager_stats.misses,
            "fold {step}: spill misses diverged from eager install"
        );
    }
}

// ---------------------------------------------------------------------------
// Zero steady-state allocation in the fold loop
// ---------------------------------------------------------------------------

/// Runs one layer's fold loop exactly as the simulator does (pooled
/// buffers, lending iterator, reclaimed dedup scratch) and returns the
/// allocations it performed.
fn fold_loop_allocations(
    dims: &scalesim_topology::MappedDims,
    array: ArrayShape,
    map: &(impl scalesim_memory::AddressMap + ?Sized),
    specs: (OperandBufferSpec, OperandBufferSpec, OperandBufferSpec),
    pool: &mut BufferPool,
    demand: &mut FoldDemandRuns,
    dedup: (IntervalSet, AddrRuns),
) -> (u64, (IntervalSet, AddrRuns)) {
    let before = allocations_on_this_thread();
    let mut dram = DramModel::new_in(specs.0, specs.1, specs.2, pool);
    let mut demands = fold_demand_runs_in(dims, array, map, dedup.0, dedup.1);
    while demands.next_into(demand) {
        dram.fold_runs(
            demand.fold.duration,
            &demand.a,
            &demand.b,
            &demand.o_spill,
            &demand.o_writes,
        );
    }
    let dedup = demands.into_scratch();
    let _ = dram.finish_into(pool);
    (allocations_on_this_thread() - before, dedup)
}

#[test]
fn fold_loop_is_allocation_free_after_warmup() {
    let spec = |kb: u64| OperandBufferSpec::from_kb(kb, 1);
    let shape = GemmShape::new(96, 64, 80);
    let map = GemmAddressMap::from_shape(shape, RegionOffsets::default());
    // WS exercises the spill path (real flushes of deferred installs); OS
    // exercises pure deferral. Both must be allocation-free once warm.
    for df in [Dataflow::OutputStationary, Dataflow::WeightStationary] {
        let dims = shape.project(df);
        let mut pool = BufferPool::new();
        let mut demand = FoldDemandRuns::default();
        let mut dedup = (IntervalSet::new(), AddrRuns::new());
        let specs = (spec(4), spec(4), spec(2));
        // Two warm-up passes: scratch buffers cycle through the LIFO pool
        // and reach their high-water marks.
        for _ in 0..2 {
            let (_, back) = fold_loop_allocations(
                &dims,
                ArrayShape::square(8),
                &map,
                specs,
                &mut pool,
                &mut demand,
                dedup,
            );
            dedup = back;
        }
        let (allocs, back) = fold_loop_allocations(
            &dims,
            ArrayShape::square(8),
            &map,
            specs,
            &mut pool,
            &mut demand,
            dedup,
        );
        dedup = back;
        let _ = dedup;
        assert_eq!(allocs, 0, "{df:?}: warm fold loop must not touch the heap");
    }
}
