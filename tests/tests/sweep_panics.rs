//! Regression tests for the sweep panic-hang: a worker panic used to
//! leave its completion slot empty forever, so the in-order emitter
//! blocked in `Slots::wait` and the whole run deadlocked. Every test here
//! runs under a watchdog so a reintroduced hang fails the suite instead
//! of stalling it.

use std::sync::mpsc;
use std::thread;
use std::time::Duration;

use scalesim::sweep::{
    AspectAxis, CsvSink, DataflowChoice, GridAxis, SweepEngine, SweepError, SweepPlan,
    SweepWorkload,
};
use scalesim::{ArrayShape, ExploreEngine, ExploreOptions, FaultPlan, SimConfig};
use scalesim_topology::{Layer, Topology};

/// Fails the calling test if `f` does not finish within `secs` seconds —
/// the hang these tests exist to catch manifests as an infinite wait.
fn watchdog<T: Send + 'static>(secs: u64, f: impl FnOnce() -> T + Send + 'static) -> T {
    let (tx, rx) = mpsc::channel();
    let worker = thread::spawn(move || {
        let _ = tx.send(f());
    });
    match rx.recv_timeout(Duration::from_secs(secs)) {
        Ok(value) => {
            worker.join().expect("watchdogged closure panicked");
            value
        }
        Err(_) => panic!("sweep did not complete within {secs}s — the panic-hang is back"),
    }
}

fn workload(name: &str, m: u64) -> SweepWorkload {
    SweepWorkload {
        label: name.to_owned(),
        topology: Topology::from_layers(name, vec![Layer::gemm(name, m, 8, 16)]),
    }
}

/// Two small GEMM workloads over a few grids: enough distinct jobs that
/// every worker of a wide pool picks something up.
fn two_workload_plan() -> SweepPlan {
    SweepPlan {
        name: "panic_regression".into(),
        base: SimConfig::builder()
            .array(ArrayShape::square(8))
            .sram_kb(16, 16, 8)
            .build(),
        workloads: vec![workload("GOOD", 24), workload("BAD", 16)],
        budgets: vec![1 << 8],
        min_dim: 8,
        grids: GridAxis::PowersOfTwo,
        aspects: AspectAxis::Squareish,
        dataflows: vec![DataflowChoice::Fixed(scalesim::Dataflow::OutputStationary)],
    }
}

#[test]
fn injected_panic_fails_the_sweep_at_every_jobs_count() {
    for jobs in 1..=8 {
        let err = watchdog(60, move || {
            let engine = SweepEngine::new(64);
            engine.inject_faults(FaultPlan::new().panic("BAD", "injected sweep fault"));
            let plan = two_workload_plan();
            engine.run(&plan, jobs)
        })
        .expect_err("a panicking workload must fail the sweep");
        match err {
            SweepError::Sim(e) => {
                assert_eq!(e.task, "BAD");
                assert!(
                    e.message.contains("injected sweep fault"),
                    "jobs={jobs}: unexpected panic payload: {}",
                    e.message
                );
            }
            other => panic!("jobs={jobs}: expected SweepError::Sim, got {other}"),
        }
    }
}

#[test]
fn streaming_sweep_surfaces_the_panic_too() {
    let err = watchdog(60, || {
        let engine = SweepEngine::new(64);
        engine.inject_faults(FaultPlan::new().panic("BAD", "stream fault"));
        let plan = two_workload_plan();
        let mut sink = CsvSink::new(Vec::new());
        engine.run_streaming(&plan, 4, &mut sink).map(|_| ())
    })
    .expect_err("streaming must abort on a worker panic");
    assert!(
        err.to_string().contains("stream fault"),
        "error must carry the panic payload: {err}"
    );
}

#[test]
fn engine_survives_a_panicking_run() {
    watchdog(120, || {
        let engine = SweepEngine::new(64);
        engine.inject_faults(FaultPlan::new().panic("BAD", "first run fault"));
        let plan = two_workload_plan();
        engine.run(&plan, 3).expect_err("faulted run must fail");
        // Clearing the plan makes the same engine (and its cache) usable
        // again; nothing from the aborted run may leak into the results.
        engine.inject_faults(FaultPlan::new());
        let outcome = engine.run(&plan, 3).expect("clean run succeeds");
        assert_eq!(outcome.results.len(), plan_points(&plan));
        assert!(outcome.simulations > 0);
    });
}

/// Expanded point count of `plan`, via a fresh single-job engine run.
fn plan_points(plan: &SweepPlan) -> usize {
    plan.expand().expect("plan is valid").len()
}

#[test]
fn explore_stage_two_surfaces_injected_panics() {
    let err = watchdog(120, || {
        let engine = ExploreEngine::new(64);
        engine.inject_faults(FaultPlan::new().panic("BAD", "explore fault"));
        let plan = two_workload_plan();
        let options = ExploreOptions {
            jobs: 4,
            ..ExploreOptions::default()
        };
        engine.run(&plan, &options).map(|_| ())
    })
    .expect_err("a panicking survivor simulation must fail the explore run");
    match err {
        SweepError::Sim(e) => {
            assert_eq!(e.task, "BAD");
            assert!(e.message.contains("explore fault"));
        }
        other => panic!("expected SweepError::Sim, got {other}"),
    }
}
