//! The shipped asset files (`assets/`) must stay loadable and faithful to
//! the built-in workloads they were exported from.

use scalesim::{parse_config, SimConfig};
use scalesim_topology::{networks, parse_topology_csv};

#[test]
fn shipped_config_matches_the_paper_defaults() {
    let text = include_str!("../../assets/scale.cfg");
    let config = parse_config(text).unwrap();
    assert_eq!(config, SimConfig::default());
}

#[test]
fn shipped_topologies_parse_back_to_the_builtins() {
    let cases = [
        (
            include_str!("../../assets/alexnet.csv"),
            networks::alexnet(),
        ),
        (
            include_str!("../../assets/resnet18.csv"),
            networks::resnet18(),
        ),
        (
            include_str!("../../assets/resnet50.csv"),
            networks::resnet50(),
        ),
        (
            include_str!("../../assets/googlenet.csv"),
            networks::googlenet(),
        ),
        (
            include_str!("../../assets/mobilenet_v1.csv"),
            networks::mobilenet_v1(),
        ),
        (include_str!("../../assets/vgg16.csv"), networks::vgg16()),
        (
            include_str!("../../assets/yolo_tiny.csv"),
            networks::yolo_tiny(),
        ),
        (
            include_str!("../../assets/language_models.csv"),
            networks::language_models(),
        ),
    ];
    for (text, builtin) in cases {
        let parsed = parse_topology_csv(builtin.name(), text).unwrap();
        assert_eq!(parsed, builtin, "asset diverged for {}", builtin.name());
    }
}
