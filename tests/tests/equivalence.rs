//! Equivalence tests: the same computation expressed two ways must cost
//! the same.

use proptest::prelude::*;

use scalesim::{ArrayShape, Dataflow, SimConfig, Simulator};
use scalesim_topology::{ConvLayerBuilder, Layer};

fn config(df: Dataflow) -> SimConfig {
    SimConfig::builder()
        .array(ArrayShape::new(8, 8))
        .dataflow(df)
        .sram_kb(32, 32, 16)
        .build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// An FC layer written as a whole-IFMAP convolution (the paper's
    /// Sec. II-E convention) must cost exactly what the equivalent raw GEMM
    /// costs: same cycles, same SRAM counts, same DRAM traffic — the
    /// addressing layouts differ but the access *structure* cannot.
    #[test]
    fn fc_as_conv_equals_gemm(
        inputs in 1u64..600,
        outputs in 1u64..600,
        df_idx in 0usize..3,
    ) {
        let df = Dataflow::ALL[df_idx];
        let fc = ConvLayerBuilder::new("fc")
            .ifmap(1, 1)
            .filter(1, 1)
            .channels(inputs)
            .num_filters(outputs)
            .build()
            .unwrap();
        let conv_layer: Layer = fc.into();
        let gemm_layer = Layer::gemm("fc", 1, inputs, outputs);
        prop_assert_eq!(conv_layer.shape(), gemm_layer.shape());

        let sim = Simulator::new(config(df));
        let a = sim.run_layer(&conv_layer);
        let b = sim.run_layer(&gemm_layer);
        prop_assert_eq!(a.total_cycles, b.total_cycles);
        prop_assert_eq!(a.sram, b.sram);
        prop_assert_eq!(a.dram.reads_a, b.dram.reads_a);
        prop_assert_eq!(a.dram.reads_b, b.dram.reads_b);
        prop_assert_eq!(a.dram.writes_o, b.dram.writes_o);
        prop_assert_eq!(a.mac_ops, b.mac_ops);
    }

    /// A stride-equal-to-filter convolution has disjoint windows: its IFMAP
    /// traffic must equal the dense GEMM's (no overlap to exploit).
    #[test]
    fn non_overlapping_conv_equals_gemm_traffic(
        tiles in 2u64..8,
        f in 1u64..4,
        ch in 1u64..4,
        nf in 1u64..6,
    ) {
        let extent = tiles * f;
        let conv = ConvLayerBuilder::new("c")
            .ifmap(extent, extent)
            .filter(f, f)
            .channels(ch)
            .num_filters(nf)
            .stride(f)
            .build()
            .unwrap();
        let shape = conv.shape();
        let conv_layer: Layer = conv.into();
        let gemm_layer = Layer::gemm("g", shape.m, shape.k, shape.n);
        let sim = Simulator::new(config(Dataflow::OutputStationary));
        let a = sim.run_layer(&conv_layer);
        let b = sim.run_layer(&gemm_layer);
        // Disjoint windows: every (window, element) pair is a distinct
        // ifmap address, exactly like the dense GEMM.
        prop_assert_eq!(a.dram.reads_a, b.dram.reads_a);
        prop_assert_eq!(a.total_cycles, b.total_cycles);
    }

    /// Overlapping windows (stride < filter) strictly reduce DRAM IFMAP
    /// traffic versus the dense GEMM of the same shape.
    #[test]
    fn overlapping_conv_beats_gemm_traffic(
        extent in 8u64..20,
        ch in 1u64..3,
        nf in 1u64..4,
    ) {
        let conv = ConvLayerBuilder::new("c")
            .ifmap(extent, extent)
            .filter(3, 3)
            .channels(ch)
            .num_filters(nf)
            .stride(1)
            .build()
            .unwrap();
        let shape = conv.shape();
        let conv_layer: Layer = conv.into();
        let gemm_layer = Layer::gemm("g", shape.m, shape.k, shape.n);
        let sim = Simulator::new(config(Dataflow::OutputStationary));
        let a = sim.run_layer(&conv_layer);
        let b = sim.run_layer(&gemm_layer);
        prop_assert!(a.dram.reads_a < b.dram.reads_a);
        // Compute schedule is identical either way.
        prop_assert_eq!(a.total_cycles, b.total_cycles);
    }
}
