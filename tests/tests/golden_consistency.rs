//! Property-based consistency between the three views of the simulator:
//! the register-level golden model, the vectorized trace engine, and the
//! closed-form analytical report. This is the repository's strongest
//! correctness argument — the Fig. 4 validation, generalized to random
//! workloads, all dataflows and ragged fold schedules.

use proptest::prelude::*;

use scalesim_memory::{GemmAddressMap, RegionOffsets};
use scalesim_systolic::pe_grid::{run, Matrix};
use scalesim_systolic::{analyze, simulate, ArrayShape, CountingSink, Dataflow};
use scalesim_topology::GemmShape;

fn matrices(m: usize, k: usize, n: usize, seed: i64) -> (Matrix, Matrix) {
    let a = Matrix::from_fn(m, k, |i, j| {
        ((i as i64 * 31 + j as i64 * 17 + seed) % 13) - 6
    });
    let b = Matrix::from_fn(k, n, |i, j| {
        ((i as i64 * 7 + j as i64 * 23 - seed) % 11) - 5
    });
    (a, b)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Golden-model cycles and values agree with the engine and with the
    /// reference matmul for every dataflow, on random shapes and arrays.
    #[test]
    fn golden_engine_analytical_agree(
        m in 1u64..20,
        k in 1u64..16,
        n in 1u64..20,
        rows_pow in 0u32..4,
        cols_pow in 0u32..4,
        seed in -50i64..50,
        df_idx in 0usize..3,
    ) {
        let df = Dataflow::ALL[df_idx];
        let array = ArrayShape::new(1 << rows_pow, 1 << cols_pow);
        let shape = GemmShape::new(m, k, n);
        let dims = shape.project(df);

        let (a, b) = matrices(m as usize, k as usize, n as usize, seed);
        let golden = run(&a, &b, array, df);
        prop_assert_eq!(&golden.output, &a.matmul(&b), "values diverge for {:?}", df);

        let report = analyze(&dims, array);
        prop_assert_eq!(golden.cycles, report.total_cycles, "cycles diverge for {:?}", df);

        // The emitted trace must occupy exactly the analytical horizon and
        // reproduce the closed-form SRAM counts.
        let map = GemmAddressMap::from_shape(shape, RegionOffsets::default());
        let mut sink = CountingSink::new();
        let sim_report = simulate(&dims, array, &map, &mut sink);
        prop_assert_eq!(sim_report, report);
        prop_assert_eq!(sink.last_cycle() + 1, report.total_cycles);
        prop_assert_eq!(sink.counts(), report.sram);
    }

    /// Runtime is invariant under transposing both the workload and the
    /// array for the OS dataflow (the schedule is symmetric in rows/cols up
    /// to the 2R vs C asymmetry — so we check the exact Eq. 3 relation
    /// instead: fold durations are what they claim).
    #[test]
    fn total_cycles_match_fold_sum(
        m in 1u64..200,
        k in 1u64..64,
        n in 1u64..200,
        rows in 1u64..20,
        cols in 1u64..20,
        df_idx in 0usize..3,
    ) {
        let df = Dataflow::ALL[df_idx];
        let dims = GemmShape::new(m, k, n).project(df);
        let array = ArrayShape::new(rows, cols);
        let report = analyze(&dims, array);
        // Recompute the horizon by brute-force fold enumeration.
        let brute: u64 = scalesim_systolic::FoldPlan::new(&dims, array)
            .map(|f| f.duration)
            .sum();
        prop_assert_eq!(report.total_cycles, brute);
        // MACs conserved and utilization within bounds.
        prop_assert_eq!(report.mac_ops, m * k * n);
        prop_assert!(report.mapping_utilization > 0.0 && report.mapping_utilization <= 1.0);
        prop_assert!(report.compute_utilization > 0.0 && report.compute_utilization <= 1.0);
    }
}

/// The Fig. 4 experiment verbatim: square matmuls at full utilization.
#[test]
fn fig4_square_matmuls_exact_agreement() {
    for nsize in [2u64, 4, 8, 12, 16, 32] {
        let array = ArrayShape::square(nsize);
        let dims = GemmShape::new(nsize, nsize, nsize).project(Dataflow::OutputStationary);
        let (a, b) = matrices(nsize as usize, nsize as usize, nsize as usize, 3);
        let golden = run(&a, &b, array, Dataflow::OutputStationary);
        assert_eq!(golden.output, a.matmul(&b));
        // Eq. 1: 2n + n + n - 2.
        assert_eq!(golden.cycles, 4 * nsize - 2);
        assert_eq!(analyze(&dims, array).total_cycles, 4 * nsize - 2);
    }
}
